"""SQL emission.

Two renderings are provided:

* :func:`generate_join_graph_sql` — the single
  ``SELECT [DISTINCT] … FROM doc AS d1, … WHERE … ORDER BY …`` block of the
  isolated join graph (Fig. 8 and Fig. 9 of the paper).
* :func:`generate_stacked_sql` — a ``WITH``-chain rendering of the
  *unrewritten* stacked plan, one common table expression per operator,
  mirroring what Pathfinder ships to the back-end without join graph
  isolation (Section IV: "a SQL common table expression that features an
  equally large number of DISTINCT and RANK() OVER (ORDER BY …) clauses").
  It documents why the stacked configuration behaves the way it does; the
  benchmark harness executes the stacked plan with the algebra interpreter,
  which mirrors the staged SORT / temporary-table execution DB2 chooses for
  this SQL shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.algebra.dag import iter_nodes
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Literal, Parameter, Predicate, Sum
from repro.core.joingraph import AggregateSpec, JoinGraph, extract_join_graph
from repro.errors import JoinGraphError


def render_join_graph(graph: JoinGraph, join_order: Optional[Sequence[str]] = None) -> str:
    """Render a :class:`JoinGraph` as a single SFW block.

    With ``join_order`` (a permutation of ``graph.aliases``) the FROM clause
    lists the aliases in that order connected by ``CROSS JOIN`` instead of
    commas.  Semantically identical, but engines such as SQLite treat the
    explicit ``CROSS JOIN`` syntax as a join-order constraint, which lets a
    caller hand the access-path order chosen by a cost-based planner to a
    back-end whose own search would not find it (the n-fold self-joins of
    Fig. 8/9 routinely exceed SQLite's join-reorder search horizon).

    Graphs carrying an :class:`~repro.core.joingraph.AggregateSpec` render
    as a native ``COUNT``/``SUM``/``AVG`` block — ``GROUP BY`` over the
    pre/level encoding for the nested form, a scalar aggregate for the
    top-level form — with no decode-side re-aggregation.
    """
    if join_order is not None and sorted(join_order) != sorted(graph.aliases):
        raise JoinGraphError(
            f"join_order {list(join_order)} is not a permutation of the "
            f"graph's aliases {graph.aliases}"
        )
    if graph.aggregate is not None:
        return _render_aggregate_join_graph(graph, join_order)
    distinct = "DISTINCT " if graph.distinct else ""
    select_list = ",\n       ".join(
        f"{term.render()} AS {name}" for term, name in graph.select_items
    )
    lines = [f"SELECT {distinct}{select_list}"]
    excluded_aliases, excluded_conditions = _having_excluded(graph)
    outer_aliases = [
        alias for index, alias in enumerate(graph.aliases) if index not in excluded_aliases
    ]
    from_list = _render_from(graph.table_name, outer_aliases, join_order)
    where_parts = [
        condition.render()
        for index, condition in enumerate(graph.conditions)
        if index not in excluded_conditions
    ]
    for position, window in enumerate(graph.windows, start=1):
        wt = f"w{position}"
        derived = _render_window_table(graph, window.spec, join_order)
        joiner = "\n     CROSS JOIN " if join_order is not None else ",\n     "
        addition = f"({_indent(derived)}) AS {wt}"
        from_list = f"{from_list}{joiner}{addition}" if from_list else addition
        for key_index, term in enumerate(window.spec.key_terms()):
            where_parts.append(f"{wt}.k{key_index} = {term.render()}")
        where_parts.append(f"{wt}.rnk {window.op} {window.value.render()}")
    for having in graph.having:
        subquery = _render_having_subquery(graph, having, join_order)
        where_parts.append(f"({_indent(subquery)}) {having.op} {having.value.render()}")
    if from_list:
        lines.append(f"FROM {from_list}")
    if where_parts:
        lines.append("WHERE " + "\n  AND ".join(where_parts))
    if graph.order_terms:
        order = ", ".join(term.render() for term in graph.order_terms)
        lines.append(f"ORDER BY {order}")
    return "\n".join(lines)


def _indent(sql: str) -> str:
    return sql.replace("\n", "\n  ")


def _having_excluded(graph: JoinGraph) -> tuple[set, set]:
    """Alias / condition indices owned by where-aggregate argument bundles."""
    alias_indices: set = set()
    condition_indices: set = set()
    for having in graph.having:
        alias_indices.update(range(having.spec.outer_alias_count, having.alias_count))
        condition_indices.update(
            range(having.spec.outer_condition_count, having.condition_count)
        )
    return alias_indices, condition_indices


def _render_window_table(graph: JoinGraph, spec, join_order) -> str:
    """One rank's window values over the rank's own scope.

    ``DENSE_RANK() OVER (PARTITION BY ... ORDER BY ...)`` computed over the
    alias/condition prefix the rank was emitted against — never over the
    full SFW block, whose downstream join partners could eliminate context
    rows and shift every rank.  The derived table is joined back to the
    outer block on the window's (partition, order) key terms, which
    uniquely determine one window value.

    The prefix is pruned to the key terms' join closure by the shared
    :meth:`WindowSpec.scope` helper (also used by the interpreted
    engine's rank pass): disconnected prefix components are pure
    multiplicative factors that DISTINCT would erase at cross-product
    cost, and dropping them cannot change the join-back result.
    """
    key_items = [
        f"{term.render()} AS k{index}" for index, term in enumerate(spec.key_terms())
    ]
    over = []
    if spec.partition:
        over.append("PARTITION BY " + ", ".join(term.render() for term in spec.partition))
    over.append("ORDER BY " + ", ".join(term.render() for term in spec.order))
    window = f"DENSE_RANK() OVER ({' '.join(over)}) AS rnk"
    scope_aliases, scope_conditions = spec.scope(graph)
    lines = ["SELECT DISTINCT " + ", ".join(key_items + [window])]
    lines.append(f"FROM {_render_from(graph.table_name, scope_aliases, join_order)}")
    if scope_conditions:
        lines.append(
            "WHERE " + "\n  AND ".join(condition.render() for condition in scope_conditions)
        )
    return "\n".join(lines)


def _render_having_subquery(graph: JoinGraph, having, join_order) -> str:
    """A where-aggregate as a correlated scalar subquery (grouped HAVING form).

    The argument bundle's aliases/conditions render inside the subquery
    (correlated to the outer block through the conditions that mention
    outer aliases); the native aggregate runs over the DISTINCT
    ``(group, unit[, value])`` rows.  The scalar shape — no GROUP BY —
    returns exactly one row even for an empty argument, which is what
    keeps ``fn:count(...) = 0`` (the ``empty()`` desugaring) satisfiable.
    """
    spec = having.spec
    inner_aliases = graph.aliases[spec.outer_alias_count : having.alias_count]
    inner_conditions = graph.conditions[
        spec.outer_condition_count : having.condition_count
    ]
    items, _count_column, _value_column = aggregate_inner_items(spec)
    select = ", ".join(f"{term.render()} AS {name}" for term, name in items)
    inner_lines = [f"SELECT DISTINCT {select}"]
    if inner_aliases:
        inner_lines.append(
            f"FROM {_render_from(graph.table_name, inner_aliases, join_order)}"
        )
    if inner_conditions:
        inner_lines.append(
            "WHERE " + "\n  AND ".join(condition.render() for condition in inner_conditions)
        )
    inner_sql = "\n".join(inner_lines)
    aggregate = _aggregate_expression(spec, "h")
    return f"SELECT {aggregate}\nFROM ({_indent(inner_sql)}) AS h"


def _render_from(
    table_name: str, aliases: Sequence[str], join_order: Optional[Sequence[str]]
) -> str:
    if join_order is not None:
        ordered = [alias for alias in join_order if alias in set(aliases)]
        return "\n     CROSS JOIN ".join(f"{table_name} AS {alias}" for alias in ordered)
    return ",\n     ".join(f"{table_name} AS {alias}" for alias in aliases)


def _render_aggregate_join_graph(
    graph: JoinGraph, join_order: Optional[Sequence[str]]
) -> str:
    """The pushed-down aggregate block (Section III-C widening).

    * **scalar** (top-level ``fn:count(...)``): one aggregate over the
      (optionally DISTINCT-deduplicated) bundle subquery;
    * **nested** (``for $v ... return fn:count(...)``): the outer iteration
      bundle LEFT JOINed to the argument bundle, ``GROUP BY`` the iteration
      identity — ``COUNT`` counts matched rows (0 for empty groups), ``SUM``
      completes empty groups via COALESCE, ``AVG`` leaves them NULL (the
      decode's "empty sequence" marker).
    """
    spec = graph.aggregate
    assert spec is not None
    inner_conditions = graph.conditions
    inner_sql = _render_aggregate_inner(graph, spec, inner_conditions, join_order)
    if spec.is_scalar:
        aggregate = _aggregate_expression(spec, "i")
        return f"SELECT {aggregate} AS item\nFROM ({inner_sql}) AS i"
    outer_aliases = graph.aliases[: spec.outer_alias_count]
    outer_conditions = graph.conditions[: spec.outer_condition_count]
    outer_items: list[tuple] = [(spec.group, "g")]
    outer_names = {spec.group: "g"}
    for term, name in graph.select_items[1:]:
        if term not in outer_names:
            outer_names[term] = name
            outer_items.append((term, name))
    outer_select = ", ".join(f"{term.render()} AS {name}" for term, name in outer_items)
    outer_distinct = "DISTINCT " if spec.outer_distinct else ""
    outer_lines = [f"SELECT {outer_distinct}{outer_select}"]
    outer_lines.append(f"FROM {_render_from(graph.table_name, outer_aliases, join_order)}")
    if outer_conditions:
        outer_lines.append(
            "WHERE " + "\n  AND ".join(condition.render() for condition in outer_conditions)
        )
    outer_sql = "\n".join(outer_lines)
    aggregate = _aggregate_expression(spec, "i")
    select_list = [f"{aggregate} AS item"]
    for term, name in graph.select_items[1:]:
        select_list.append(f"o.{outer_names[term]} AS {name}")
    group_by = ", ".join(f"o.{name}" for _term, name in outer_items)
    order_by = ", ".join(f"o.{outer_names[term]}" for term in graph.order_terms)
    lines = [
        f"SELECT {', '.join(select_list)}",
        f"FROM ({outer_sql}) AS o",
        f"LEFT JOIN ({inner_sql}) AS i ON i.g = o.g",
        f"GROUP BY {group_by}",
    ]
    if order_by:
        lines.append(f"ORDER BY {order_by}")
    return "\n".join(lines)


def aggregate_inner_items(spec: AggregateSpec) -> tuple[list[tuple], str, Optional[str]]:
    """The inner bundle's select list, the COUNT column, the value column.

    Returns ``(items, count_column, value_column)`` where ``items`` is the
    ``(term, name)`` select list of the argument subquery: the group
    identity (``g``), the unit (``u`` — the argument node's ``pre``), and
    the aggregated value (``v``) — each distinct term named once.  The
    subquery is always rendered ``DISTINCT`` over these columns (the
    operator's dedup-own semantics).  The COUNT column is never NULL per
    real row, which is what makes ``COUNT(i.<col>)`` over a LEFT JOIN
    report 0 for empty groups.  Shared with the relational engine so the
    interpreted and RDBMS aggregations read the same columns.
    """
    items: list[tuple] = [(spec.child_group, "g")]

    def resolve(term, fallback_name: str) -> str:
        for existing, name in items:
            if existing == term:
                return name
        items.append((term, fallback_name))
        return fallback_name

    count_column = resolve(spec.unit, "u")
    value_column: Optional[str] = None
    if spec.value is not None:
        value_column = resolve(spec.value, "v")
    return items, count_column, value_column


def _render_aggregate_inner(
    graph: JoinGraph,
    spec: AggregateSpec,
    conditions: Sequence,
    join_order: Optional[Sequence[str]],
) -> str:
    """The argument bundle: all aliases, all conditions, the agg's inputs."""
    items, _count_column, _value_column = aggregate_inner_items(spec)
    select = ", ".join(f"{term.render()} AS {name}" for term, name in items)
    lines = [f"SELECT DISTINCT {select}"]
    lines.append(f"FROM {_render_from(graph.table_name, graph.aliases, join_order)}")
    if conditions:
        lines.append(
            "WHERE " + "\n  AND ".join(condition.render() for condition in conditions)
        )
    return "\n".join(lines)


def _aggregate_expression(spec: AggregateSpec, alias: str) -> str:
    """The native aggregate over the inner subquery's output columns."""
    _items, count_column, value_column = aggregate_inner_items(spec)
    if spec.function == "count":
        return f"COUNT({alias}.{count_column})"
    if spec.function == "sum":
        return f"COALESCE(SUM({alias}.{value_column}), 0)"
    return f"AVG({alias}.{value_column})"


def generate_join_graph_sql(plan: Operator, table_name: str = "doc") -> str:
    """Extract the join graph of an isolated plan and render it as SQL."""
    graph = plan if isinstance(plan, JoinGraph) else extract_join_graph(plan, table_name)
    return render_join_graph(graph)


# ---------------------------------------------------------------------------
# Stacked (CTE) rendering of the unrewritten plan
# ---------------------------------------------------------------------------


def _render_predicate_sql(predicate: Predicate, resolve) -> str:
    def term(t) -> str:
        if isinstance(t, ColumnRef):
            return resolve(t.name)
        if isinstance(t, Literal):
            return _sql_literal(t.value)
        if isinstance(t, Sum):
            return " + ".join(term(part) for part in t.terms)
        if isinstance(t, Parameter):
            return f":{t.name}"
        raise TypeError(f"unexpected predicate term {t!r}")

    return " AND ".join(f"{term(c.left)} {c.op} {term(c.right)}" for c in predicate.conjuncts)


def generate_stacked_sql(plan: Operator, table_name: str = "doc") -> str:
    """Render the (unrewritten) stacked plan as a WITH-chain, one CTE per operator."""
    names: dict[int, str] = {}
    definitions: list[str] = []

    def name_of(node: Operator) -> str:
        return names[id(node)]

    for index, node in enumerate(iter_nodes(plan)):
        cte = f"t{index}"
        names[id(node)] = cte
        definitions.append(f"{cte} AS ({_render_operator(node, name_of, table_name)})")
    final = names[id(plan)]
    body = ",\n     ".join(definitions)
    return f"WITH {body}\nSELECT * FROM {final}"


def _render_operator(node: Operator, name_of, table_name: str) -> str:
    if isinstance(node, DocTable):
        return f"SELECT * FROM {table_name}"
    if isinstance(node, LiteralTable):
        if not node.rows:
            selects = ", ".join(f"NULL AS {column}" for column in node.columns)
            return f"SELECT {selects} WHERE 1 = 0"
        rows = []
        for row in node.rows:
            values = ", ".join(
                f"{_sql_literal(value)} AS {column}" for column, value in zip(node.columns, row)
            )
            rows.append(f"SELECT {values}")
        return " UNION ALL ".join(rows)
    if isinstance(node, Serialize):
        return f"SELECT * FROM {name_of(node.child)}"
    if isinstance(node, Project):
        items = ", ".join(
            old if new == old else f"{old} AS {new}" for new, old in node.items
        )
        return f"SELECT {items} FROM {name_of(node.child)}"
    if isinstance(node, Select):
        predicate = _render_predicate_sql(node.predicate, lambda c: c)
        return f"SELECT * FROM {name_of(node.child)} WHERE {predicate}"
    if isinstance(node, Distinct):
        return f"SELECT DISTINCT * FROM {name_of(node.child)}"
    if isinstance(node, Attach):
        return f"SELECT *, {_sql_literal(node.value)} AS {node.column} FROM {name_of(node.child)}"
    if isinstance(node, RowId):
        # ROW_NUMBER() OVER () leaves the numbering to the engine's arbitrary
        # row order; ordering over the operator's input columns keeps stacked
        # SQL deterministic on a real RDBMS (# only promises *unique* ids, so
        # any fixed total order is a valid refinement).
        order = ", ".join(node.child.columns)
        return (
            f"SELECT *, ROW_NUMBER() OVER (ORDER BY {order}) AS {node.column} "
            f"FROM {name_of(node.child)}"
        )
    if isinstance(node, RowRank):
        order = ", ".join(node.order_by)
        partition = ""
        if node.partition_by:
            partition = f"PARTITION BY {', '.join(node.partition_by)} "
        return (
            f"SELECT *, RANK() OVER ({partition}ORDER BY {order}) AS {node.column} "
            f"FROM {name_of(node.child)}"
        )
    if isinstance(node, Join):
        predicate = _render_predicate_sql(node.predicate, lambda c: c)
        return (
            f"SELECT * FROM {name_of(node.left)}, {name_of(node.right)} WHERE {predicate}"
        )
    if isinstance(node, Cross):
        return f"SELECT * FROM {name_of(node.left)}, {name_of(node.right)}"
    if isinstance(node, GroupAggregate):
        # One output row per loop row with the group's native aggregate over
        # the DISTINCT (group, unit, value) rows of the argument; the LEFT
        # JOIN completes empty groups (COUNT -> 0, SUM -> COALESCE 0);
        # fn:avg over an empty group is the empty sequence, hence the HAVING.
        loop_columns = ", ".join(f"l.{column} AS {column}" for column in node.loop.columns)
        group_by = ", ".join(f"l.{column}" for column in node.loop.columns)
        argument_columns = [node.group_column, node.unit_column]
        if node.value_column is not None:
            argument_columns.append(node.value_column)
        argument = (
            "SELECT DISTINCT "
            + ", ".join(argument_columns)
            + f" FROM {name_of(node.child)}"
        )
        if node.function == "count":
            aggregate = f"COUNT(c.{node.unit_column})"
            having = ""
        elif node.function == "sum":
            aggregate = f"COALESCE(SUM(c.{node.value_column}), 0)"
            having = ""
        else:
            aggregate = f"AVG(c.{node.value_column})"
            having = f" HAVING AVG(c.{node.value_column}) IS NOT NULL"
        return (
            f"SELECT {loop_columns}, {aggregate} AS {node.item_column} "
            f"FROM {name_of(node.loop)} AS l "
            f"LEFT JOIN ({argument}) AS c ON c.{node.group_column} = l.{node.group_column} "
            f"GROUP BY {group_by}{having}"
        )
    raise TypeError(f"cannot render operator {type(node).__name__}")


def _sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal.

    Booleans must come out as ``1``/``0`` (``True``/``False`` is not SQL) and
    ``None`` as ``NULL``; the bool test precedes everything else because
    ``bool`` is a subclass of ``int``.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)

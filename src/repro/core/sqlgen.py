"""SQL emission.

Two renderings are provided:

* :func:`generate_join_graph_sql` — the single
  ``SELECT [DISTINCT] … FROM doc AS d1, … WHERE … ORDER BY …`` block of the
  isolated join graph (Fig. 8 and Fig. 9 of the paper).
* :func:`generate_stacked_sql` — a ``WITH``-chain rendering of the
  *unrewritten* stacked plan, one common table expression per operator,
  mirroring what Pathfinder ships to the back-end without join graph
  isolation (Section IV: "a SQL common table expression that features an
  equally large number of DISTINCT and RANK() OVER (ORDER BY …) clauses").
  It documents why the stacked configuration behaves the way it does; the
  benchmark harness executes the stacked plan with the algebra interpreter,
  which mirrors the staged SORT / temporary-table execution DB2 chooses for
  this SQL shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.algebra.dag import iter_nodes
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Literal, Parameter, Predicate, Sum
from repro.core.joingraph import JoinGraph, extract_join_graph
from repro.errors import JoinGraphError


def render_join_graph(graph: JoinGraph, join_order: Optional[Sequence[str]] = None) -> str:
    """Render a :class:`JoinGraph` as a single SFW block.

    With ``join_order`` (a permutation of ``graph.aliases``) the FROM clause
    lists the aliases in that order connected by ``CROSS JOIN`` instead of
    commas.  Semantically identical, but engines such as SQLite treat the
    explicit ``CROSS JOIN`` syntax as a join-order constraint, which lets a
    caller hand the access-path order chosen by a cost-based planner to a
    back-end whose own search would not find it (the n-fold self-joins of
    Fig. 8/9 routinely exceed SQLite's join-reorder search horizon).
    """
    distinct = "DISTINCT " if graph.distinct else ""
    select_list = ",\n       ".join(
        f"{term.render()} AS {name}" for term, name in graph.select_items
    )
    lines = [f"SELECT {distinct}{select_list}"]
    if join_order is not None:
        if sorted(join_order) != sorted(graph.aliases):
            raise JoinGraphError(
                f"join_order {list(join_order)} is not a permutation of the "
                f"graph's aliases {graph.aliases}"
            )
        from_list = "\n     CROSS JOIN ".join(
            f"{graph.table_name} AS {alias}" for alias in join_order
        )
    else:
        from_list = ",\n     ".join(
            f"{graph.table_name} AS {alias}" for alias in graph.aliases
        )
    if graph.aliases:
        lines.append(f"FROM {from_list}")
    if graph.conditions:
        where = "\n  AND ".join(condition.render() for condition in graph.conditions)
        lines.append(f"WHERE {where}")
    if graph.order_terms:
        order = ", ".join(term.render() for term in graph.order_terms)
        lines.append(f"ORDER BY {order}")
    return "\n".join(lines)


def generate_join_graph_sql(plan: Operator, table_name: str = "doc") -> str:
    """Extract the join graph of an isolated plan and render it as SQL."""
    graph = plan if isinstance(plan, JoinGraph) else extract_join_graph(plan, table_name)
    return render_join_graph(graph)


# ---------------------------------------------------------------------------
# Stacked (CTE) rendering of the unrewritten plan
# ---------------------------------------------------------------------------


def _render_predicate_sql(predicate: Predicate, resolve) -> str:
    def term(t) -> str:
        if isinstance(t, ColumnRef):
            return resolve(t.name)
        if isinstance(t, Literal):
            return _sql_literal(t.value)
        if isinstance(t, Sum):
            return " + ".join(term(part) for part in t.terms)
        if isinstance(t, Parameter):
            return f":{t.name}"
        raise TypeError(f"unexpected predicate term {t!r}")

    return " AND ".join(f"{term(c.left)} {c.op} {term(c.right)}" for c in predicate.conjuncts)


def generate_stacked_sql(plan: Operator, table_name: str = "doc") -> str:
    """Render the (unrewritten) stacked plan as a WITH-chain, one CTE per operator."""
    names: dict[int, str] = {}
    definitions: list[str] = []

    def name_of(node: Operator) -> str:
        return names[id(node)]

    for index, node in enumerate(iter_nodes(plan)):
        cte = f"t{index}"
        names[id(node)] = cte
        definitions.append(f"{cte} AS ({_render_operator(node, name_of, table_name)})")
    final = names[id(plan)]
    body = ",\n     ".join(definitions)
    return f"WITH {body}\nSELECT * FROM {final}"


def _render_operator(node: Operator, name_of, table_name: str) -> str:
    if isinstance(node, DocTable):
        return f"SELECT * FROM {table_name}"
    if isinstance(node, LiteralTable):
        if not node.rows:
            selects = ", ".join(f"NULL AS {column}" for column in node.columns)
            return f"SELECT {selects} WHERE 1 = 0"
        rows = []
        for row in node.rows:
            values = ", ".join(
                f"{_sql_literal(value)} AS {column}" for column, value in zip(node.columns, row)
            )
            rows.append(f"SELECT {values}")
        return " UNION ALL ".join(rows)
    if isinstance(node, Serialize):
        return f"SELECT * FROM {name_of(node.child)}"
    if isinstance(node, Project):
        items = ", ".join(
            old if new == old else f"{old} AS {new}" for new, old in node.items
        )
        return f"SELECT {items} FROM {name_of(node.child)}"
    if isinstance(node, Select):
        predicate = _render_predicate_sql(node.predicate, lambda c: c)
        return f"SELECT * FROM {name_of(node.child)} WHERE {predicate}"
    if isinstance(node, Distinct):
        return f"SELECT DISTINCT * FROM {name_of(node.child)}"
    if isinstance(node, Attach):
        return f"SELECT *, {_sql_literal(node.value)} AS {node.column} FROM {name_of(node.child)}"
    if isinstance(node, RowId):
        # ROW_NUMBER() OVER () leaves the numbering to the engine's arbitrary
        # row order; ordering over the operator's input columns keeps stacked
        # SQL deterministic on a real RDBMS (# only promises *unique* ids, so
        # any fixed total order is a valid refinement).
        order = ", ".join(node.child.columns)
        return (
            f"SELECT *, ROW_NUMBER() OVER (ORDER BY {order}) AS {node.column} "
            f"FROM {name_of(node.child)}"
        )
    if isinstance(node, RowRank):
        order = ", ".join(node.order_by)
        return (
            f"SELECT *, RANK() OVER (ORDER BY {order}) AS {node.column} "
            f"FROM {name_of(node.child)}"
        )
    if isinstance(node, Join):
        predicate = _render_predicate_sql(node.predicate, lambda c: c)
        return (
            f"SELECT * FROM {name_of(node.left)}, {name_of(node.right)} WHERE {predicate}"
        )
    if isinstance(node, Cross):
        return f"SELECT * FROM {name_of(node.left)}, {name_of(node.right)}"
    raise TypeError(f"cannot render operator {type(node).__name__}")


def _sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal.

    Booleans must come out as ``1``/``0`` (``True``/``False`` is not SQL) and
    ``None`` as ``NULL``; the bool test precedes everything else because
    ``bool`` is a subclass of ``int``.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)

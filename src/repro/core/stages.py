"""Explicit pipeline stages over a frozen execution context.

The seed's :class:`~repro.core.pipeline.XQueryProcessor` ran an *implicit*
parse → compile → isolate → plan → execute flow through private methods
that read processor attributes as they went.  That shape is hostile to a
concurrent serving layer: a worker cannot know which attributes an
execution touches, so nothing can be shared safely.

This module makes the flow explicit and the sharing contract checkable:

* **Stage objects** (:class:`ParseStage`, :class:`NormalizeStage`,
  :class:`CompileStage`, :class:`IsolateStage`, :class:`ExtractStage`) are
  frozen dataclasses — their configuration is fixed at construction, and
  ``run`` is a pure function of its inputs.  :class:`CompilationPipeline`
  composes them and records per-stage wall-clock timings.
* :class:`ExecutionContext` is a frozen snapshot of everything a worker
  needs to *execute* a compiled plan: the ``doc`` table, the relational
  engine, the SQLite mirror, the encoding, and the compiler settings.
  The bindings of one frozen context never change; the objects it points
  at are themselves thread-safe (locked pool, read-only tables).
* The ``run_*`` executors are module-level pure functions
  ``(compilation, context, …) → ExecutionOutcome``.  Any thread holding a
  :class:`CompilationResult` and an :class:`ExecutionContext` can execute
  it — no processor mutable state is involved, which is exactly the
  invariant :class:`repro.service.QueryService` workers rely on.

Every executor folds a per-stage latency breakdown into
:attr:`ExecutionOutcome.timings` (``bind``/``render``/``sync``/``execute``/
``decode`` seconds, plus the compile-side stages when the plan was compiled
in the same call), so a serving layer can report where time went without
wrapping the engines.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional

from repro.errors import JoinGraphError, PlanningError
from repro.algebra.interpreter import PlanInterpreter
from repro.algebra.operators import Serialize
from repro.algebra.table import Table
from repro.core.joingraph import JoinGraph, extract_join_graph
from repro.core.rewriter import IsolationReport, JoinGraphIsolation
from repro.core.sqlgen import generate_stacked_sql, render_join_graph
from repro.relational.catalog import Database
from repro.relational.engine import QueryResult, RelationalEngine
from repro.sqlbackend.backend import SQLiteBackend, SQLResult
from repro.sqlbackend.decode import first_occurrence_items, ordered_items, sequence_items
from repro.xmldb.encoding import DocumentEncoding
from repro.xquery.ast import (
    Aggregate,
    Expression,
    ExternalVariable,
    ForExpr,
    IfExpr,
    LetExpr,
    NumberLiteral,
    QueryModule,
    StringLiteral,
    check_bindings,
    render,
)
from repro.xquery.compiler import CompilerSettings, LoopLiftingCompiler
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_module

#: Stage name → wall-clock seconds; the latency breakdown unit used by both
#: :class:`CompilationResult` (compile side) and :class:`ExecutionOutcome`
#: (execute side).
StageTimings = dict


@contextmanager
def _timed(timings: StageTimings, stage: str) -> Iterator[None]:
    """Accumulate the wall-clock time of one stage under ``timings[stage]``."""
    started = time.perf_counter()
    try:
        yield
    finally:
        timings[stage] = timings.get(stage, 0.0) + (time.perf_counter() - started)


# -- results -------------------------------------------------------------------------


@dataclass
class CompilationResult:
    """Everything the compiler + isolation produce for one query.

    ``source`` (and ``surface_ast``) record the text the entry was first
    compiled from; on a :class:`~repro.core.pipeline.PlanCache` hit from a
    formatting variant (the cache keys on the *normalized core AST*), they
    reflect that first variant, not the text of the current call.

    A compilation result is **immutable in the concurrency sense**: after
    :meth:`CompilationPipeline.build` returns it, the only field that is
    ever written again is the :attr:`sql_backend_sql` memo, and that write
    happens under :data:`_SQL_RENDER_LOCK` (and is idempotent per catalog
    state), so results can be shared freely between worker threads.
    """

    source: str
    surface_ast: Expression
    core_ast: Expression
    stacked_plan: Serialize
    isolated_plan: Serialize
    isolation_report: IsolationReport
    join_graph: Optional[JoinGraph]
    join_graph_sql: Optional[str]
    stacked_sql: str
    join_graph_error: Optional[str] = None
    #: External variables the query declares; their values arrive as
    #: ``bindings`` at execution time (empty for ad-hoc queries).
    external_variables: tuple[ExternalVariable, ...] = ()
    #: True when the query's return position produces *values* (aggregates
    #: or literals), not nodes.  Node sequences are deduplicated at decode
    #: time (the set discipline ``fs:ddo`` established); value sequences
    #: keep one item per iteration — two iterations may legitimately
    #: produce the same count or sum.
    value_result: bool = False
    #: Lazily rendered join-graph SQL for the RDBMS backend: the Fig. 8/9
    #: block with an explicit CROSS JOIN order (see :func:`sql_backend_sql`).
    #: Memoized as ``(stats key, sql)`` so prepared queries re-execute
    #: without re-rendering any SQL, while catalog growth (a processor
    #: rebuild with fresh statistics) invalidates the pinned join order
    #: instead of freezing a stale one.
    sql_backend_sql: Optional[tuple[tuple, str]] = field(default=None, repr=False)
    #: Wall-clock seconds per compile stage (parse/normalize/compile/
    #: isolate/extract), recorded when the result was built.
    timings: StageTimings = field(default_factory=dict, repr=False, compare=False)

    def core_text(self) -> str:
        """The normalized XQuery Core rendering (cf. Section II-D)."""
        return render(self.core_ast)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of the declared external variables, in declaration order."""
        return tuple(declaration.name for declaration in self.external_variables)

    @property
    def rewrite_trace(self):
        """The isolation run as an immutable provenance trace.

        A :class:`~repro.core.rewrite.trace.RewriteTrace`: the ordered
        applied steps, the rejected applications, the operator counts, and
        the driver that produced them.  ``rewrite_trace.render()`` is the
        human-readable account (see the README example);
        ``rewrite_trace.rules_fired()`` the per-rule histogram the
        differential tests pin.
        """
        return self.isolation_report.trace()

    @property
    def auto_engine(self) -> str:
        """The engine the ``"auto"`` configuration dispatches to.

        The decision is made *once*, when this result is built: extraction
        either produced a join graph or recorded its refusal in
        :attr:`join_graph_error`.  Because the result lives in the plan
        cache, repeated auto-mode executions of a refused query re-read
        this flag — they never re-run isolation or extraction (asserted by
        ``tests/core/test_plan_cache.py`` via the cache counters).
        """
        return "join-graph" if self.join_graph is not None else "stacked"


@dataclass
class ExecutionOutcome:
    """Result of executing one query in one configuration.

    ``rows_scanned`` counts rows the engine materialised/scanned — for the
    interpreted configurations only.  The ``sql``/``sql-stacked`` paths
    report 0: the stdlib SQLite driver exposes no scan counters, and a
    wrong-but-plausible number would be worse than none (result cardinality
    lives in ``details.row_count`` / :attr:`node_count`).

    ``timings`` is the per-stage latency breakdown: execute-side stages
    always (``bind``, ``execute``, ``decode``, plus ``render``/``sync`` on
    the RDBMS path), compile-side stages merged in when the plan was
    compiled (not cache-hit) by the same call.
    """

    items: list[int]
    configuration: str
    rows_scanned: int = 0
    details: object = None
    timings: StageTimings = field(default_factory=dict)
    #: Set by the serving layer when this outcome was produced by a
    #: *fallback* engine after the requested one failed: the engine the
    #: caller originally asked for (e.g. ``"sql"``).  ``None`` for direct
    #: executions.  Safe to serve as-is — the engine equivalence proof
    #: guarantees the items are bit-for-bit what the requested engine
    #: would have returned.
    degraded_from: Optional[str] = None

    @property
    def node_count(self) -> int:
        return len(self.items)

    @property
    def elapsed_seconds(self) -> float:
        """Total recorded stage time (a lower bound on end-to-end latency)."""
        return sum(self.timings.values())


# -- the frozen execution context ------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ExecutionContext:
    """A frozen snapshot of the state one worker needs to execute plans.

    The *bindings* of the context never change (the dataclass is frozen);
    the referenced objects are safe to share:

    * :attr:`doc_table` and :attr:`database` are read-only after
      construction (lazy statistics fills are idempotent dict writes);
    * :attr:`engine` plans/executes without mutating shared state;
    * :attr:`sql_backend_supplier` resolves (and lazily creates, behind
      its own lock) the SQLite mirror, which serializes writes behind its
      pool's write lock and hands each thread its own read connection —
      the mirror only exists once a ``sql``/``sql-stacked`` execution
      actually needs it;
    * :attr:`encoding` is append-only — a context built for catalog
      version *v* keeps executing correctly after version *v+1* appends,
      because plans only reference rows that existed when they ran.
    """

    encoding: DocumentEncoding
    doc_table: Table
    database: Database
    engine: RelationalEngine
    settings: CompilerSettings
    default_document: Optional[str] = None
    sql_backend_supplier: Optional[Callable[[], SQLiteBackend]] = None

    def catalog_key(self) -> tuple:
        """Identity of the catalog + statistics the SQL join order is pinned to."""
        return (id(self.database), len(self.encoding))


# -- compilation stages ----------------------------------------------------------------


@dataclass(frozen=True)
class ParseStage:
    """Source text → surface :class:`~repro.xquery.ast.QueryModule`."""

    def run(self, source: str) -> QueryModule:
        return parse_module(source)


@dataclass(frozen=True)
class NormalizeStage:
    """Surface module → normalized XQuery Core (Section II-D)."""

    default_document: Optional[str] = None

    def run(self, module: QueryModule) -> Expression:
        return normalize(module.body, default_document=self.default_document)


@dataclass(frozen=True)
class CompileStage:
    """Core expression → stacked loop-lifted plan (Fig. 4)."""

    settings: CompilerSettings

    def run(self, core: Expression) -> Serialize:
        return LoopLiftingCompiler(self.settings).compile(core)


@dataclass(frozen=True)
class IsolateStage:
    """Stacked plan → isolated plan + report (Section III)."""

    isolation: JoinGraphIsolation = field(default_factory=JoinGraphIsolation)

    def run(self, stacked: Serialize) -> tuple[Serialize, IsolationReport]:
        return self.isolation.isolate(stacked)


@dataclass(frozen=True)
class ExtractStage:
    """Isolated plan → (join graph, Fig. 8/9 SQL, error) — best effort."""

    def run(
        self, isolated: Serialize
    ) -> tuple[Optional[JoinGraph], Optional[str], Optional[str]]:
        try:
            graph = extract_join_graph(isolated)
            return graph, render_join_graph(graph), None
        except JoinGraphError as error:
            return None, None, str(error)


@dataclass(frozen=True)
class KeyedSource:
    """The output of the front half of compilation: enough to cache-key."""

    source: str
    module: QueryModule
    core: Expression
    timings: StageTimings = field(default_factory=dict)


@dataclass(frozen=True)
class CompilationPipeline:
    """The explicit parse → normalize → compile → isolate → extract flow.

    Immutable: one pipeline object per (settings, isolation) configuration
    can serve any number of threads.  The flow is split in two halves so a
    plan cache can sit in the middle — :meth:`key` runs the cheap stages
    that determine the cache key (parse + normalize), :meth:`build` runs
    the expensive ones (loop lifting, isolation, extraction) only on a
    miss.
    """

    parse: ParseStage
    normalize: NormalizeStage
    compile: CompileStage
    isolate: IsolateStage
    extract: ExtractStage = field(default_factory=ExtractStage)

    @classmethod
    def configure(
        cls,
        settings: CompilerSettings,
        isolation: Optional[JoinGraphIsolation] = None,
    ) -> "CompilationPipeline":
        """The standard pipeline for one compiler/isolation configuration."""
        return cls(
            parse=ParseStage(),
            normalize=NormalizeStage(default_document=settings.default_document),
            compile=CompileStage(settings),
            isolate=IsolateStage(isolation or JoinGraphIsolation()),
            extract=ExtractStage(),
        )

    def key(self, source: str) -> KeyedSource:
        """Run parse + normalize (everything a cache key needs)."""
        timings: StageTimings = {}
        with _timed(timings, "parse"):
            module = self.parse.run(source)
        with _timed(timings, "normalize"):
            core = self.normalize.run(module)
        return KeyedSource(source=source, module=module, core=core, timings=timings)

    @staticmethod
    def returns_values(core: Expression) -> bool:
        """Whether the return position of ``core`` yields values, not nodes.

        Walks the FLWOR spine (``for``/``let`` bodies, conditional then
        branches) to the expression that produces the result items.  An
        aggregate or literal there makes the item column a per-iteration
        *value* — the decode step must keep duplicates.  Everything else
        (paths, variables, position filters) yields nodes, which follow the
        deduplicating set discipline.
        """
        while True:
            if isinstance(core, (ForExpr, LetExpr)):
                core = core.body
            elif isinstance(core, IfExpr):
                core = core.then_branch
            else:
                return isinstance(core, (Aggregate, NumberLiteral, StringLiteral))

    def build(self, keyed: KeyedSource) -> CompilationResult:
        """Run the expensive back half and assemble the result."""
        timings = dict(keyed.timings)
        with _timed(timings, "compile"):
            stacked = self.compile.run(keyed.core)
        with _timed(timings, "isolate"):
            isolated, report = self.isolate.run(stacked)
        with _timed(timings, "extract"):
            join_graph, join_graph_sql, join_graph_error = self.extract.run(isolated)
            stacked_sql = generate_stacked_sql(stacked)
        return CompilationResult(
            source=keyed.source,
            surface_ast=keyed.module.body,
            core_ast=keyed.core,
            stacked_plan=stacked,
            isolated_plan=isolated,
            isolation_report=report,
            join_graph=join_graph,
            join_graph_sql=join_graph_sql,
            stacked_sql=stacked_sql,
            join_graph_error=join_graph_error,
            external_variables=keyed.module.externals,
            value_result=self.returns_values(keyed.core),
            timings=timings,
        )

    def compile_source(self, source: str) -> CompilationResult:
        """Uncached end-to-end compilation (:meth:`key` + :meth:`build`)."""
        return self.build(self.key(source))


# -- execution stages -------------------------------------------------------------------

#: Guards the per-compilation SQL render memo.  Rendering is deterministic
#: for a given catalog state, so the lock only prevents duplicate work —
#: correctness would survive a benign race, plan-cache sharing makes the
#: single render worth keeping.
_SQL_RENDER_LOCK = threading.Lock()


def sql_backend_sql(compilation: CompilationResult, context: ExecutionContext) -> str:
    """The join-graph SQL the RDBMS backend executes (rendered once).

    Same block as ``compilation.join_graph_sql`` (Fig. 8/9), but the
    FROM clause spells out a CROSS JOIN order: SQLite honours that
    syntax as a join-order constraint, and the n-fold self-joins here
    routinely defeat its own reorder search (a cold 10-way self-join
    can run 100x slower than the same block with the order pinned).
    The order comes from the in-tree cost-based planner when the graph
    is value-complete; parameterized graphs fall back to the static
    root-to-result (document descent) order so the text can be rendered
    once and re-bound forever.

    The memo is keyed on the catalog the order was planned against: a
    CompilationResult lives in a PlanCache shared across processor
    rebuilds (catalog growth), and CROSS JOIN is a hard ordering
    constraint — re-plan against fresh statistics rather than pin an
    order chosen for a different catalog.
    """
    if compilation.join_graph is None:
        raise JoinGraphError(
            compilation.join_graph_error or "the query has no isolated join graph"
        )
    stats_key = context.catalog_key()
    # Fast path outside the lock: the memo tuple is written atomically and
    # rendering is deterministic per catalog state, so a stale read at
    # worst re-enters the locked slow path — it can never return wrong SQL.
    memo = compilation.sql_backend_sql
    if memo is not None and memo[0] == stats_key:
        return memo[1]
    with _SQL_RENDER_LOCK:
        memo = compilation.sql_backend_sql
        if memo is not None and memo[0] == stats_key:
            return memo[1]
        graph = compilation.join_graph
        join_order = list(reversed(graph.aliases))
        if not graph.parameters():
            try:
                join_order = context.engine.plan(graph).join_order
            except PlanningError:
                pass  # keep the static descent order
        rendered = render_join_graph(graph, join_order=join_order)
        compilation.sql_backend_sql = (stats_key, rendered)
        return rendered


def run_stacked(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Evaluate the *unrewritten* stacked plan with the algebra interpreter."""
    return _run_interpreted(
        compilation, context, compilation.stacked_plan, "stacked",
        timeout_seconds, bindings, timings,
    )


def run_isolated(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Evaluate the isolated plan with the algebra interpreter (sanity path)."""
    return _run_interpreted(
        compilation, context, compilation.isolated_plan, "isolated-interpreted",
        timeout_seconds, bindings, timings,
    )


def _run_interpreted(
    compilation: CompilationResult,
    context: ExecutionContext,
    plan: Serialize,
    configuration: str,
    timeout_seconds: Optional[float],
    bindings: Optional[Mapping[str, object]],
    timings: Optional[StageTimings],
) -> ExecutionOutcome:
    timings = {} if timings is None else timings
    with _timed(timings, "bind"):
        values = check_bindings(compilation.external_variables, bindings)
    interpreter = PlanInterpreter(
        context.doc_table,
        timeout_seconds=timeout_seconds,
        parameters=values or None,
        columnar=context.settings.columnar_execution,
    )
    with _timed(timings, "execute"):
        table = interpreter.evaluate(plan)
    with _timed(timings, "decode"):
        items = sequence_items(
            table.columns, table.rows, distinct=not compilation.value_result
        )
    return ExecutionOutcome(
        items=items,
        configuration=configuration,
        rows_scanned=interpreter.rows_materialised,
        timings=timings,
    )


def run_join_graph(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Plan + execute the SQL join graph on the in-tree relational back-end."""
    if compilation.join_graph is None:
        raise JoinGraphError(
            compilation.join_graph_error or "the query has no isolated join graph"
        )
    timings = {} if timings is None else timings
    with _timed(timings, "bind"):
        values = check_bindings(compilation.external_variables, bindings)
    with _timed(timings, "execute"):
        result: QueryResult = context.engine.execute(
            compilation.join_graph,
            timeout_seconds=timeout_seconds,
            bindings=values or None,
        )
    with _timed(timings, "decode"):
        items = first_occurrence_items(
            result.items(), distinct=not compilation.value_result
        )
    return ExecutionOutcome(
        items=items,
        configuration="join-graph",
        rows_scanned=result.rows_scanned,
        details=result,
        timings=timings,
    )


def _require_backend(context: ExecutionContext) -> SQLiteBackend:
    if context.sql_backend_supplier is None:
        raise JoinGraphError(
            "this execution context has no SQLite backend attached"
        )
    return context.sql_backend_supplier()


def run_sql(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Isolated join graph on the RDBMS: the paper's production story."""
    timings = {} if timings is None else timings
    backend = _require_backend(context)
    with _timed(timings, "sync"):
        backend.sync(context.encoding)
    with _timed(timings, "render"):
        sql = sql_backend_sql(compilation, context)
    with _timed(timings, "bind"):
        values = check_bindings(compilation.external_variables, bindings)
    with _timed(timings, "execute"):
        result: SQLResult = backend.execute(
            sql, bindings=values or None, timeout_seconds=timeout_seconds
        )
    with _timed(timings, "decode"):
        items = ordered_items(
            result.columns,
            result.rows,
            distinct=not compilation.value_result,
            column_data=result.column_data,
        )
    return ExecutionOutcome(
        items=items, configuration="sql", details=result, timings=timings
    )


def run_sql_stacked(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Stacked WITH-chain on the RDBMS: what Pathfinder ships unrewritten."""
    timings = {} if timings is None else timings
    backend = _require_backend(context)
    with _timed(timings, "sync"):
        backend.sync(context.encoding)
    with _timed(timings, "bind"):
        values = check_bindings(compilation.external_variables, bindings)
    with _timed(timings, "execute"):
        result: SQLResult = backend.execute(
            compilation.stacked_sql,
            bindings=values or None,
            timeout_seconds=timeout_seconds,
        )
    with _timed(timings, "decode"):
        items = sequence_items(
            result.columns,
            result.rows,
            distinct=not compilation.value_result,
            column_data=result.column_data,
        )
    return ExecutionOutcome(
        items=items, configuration="sql-stacked", details=result, timings=timings
    )


def run_auto(
    compilation: CompilationResult,
    context: ExecutionContext,
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Join graph when one was isolated, else the stacked plan.

    Dispatches on :attr:`CompilationResult.auto_engine` — a flag computed
    at build time and cached with the plan, so an auto-mode caller pays
    for isolation exactly once per plan-cache key no matter how often a
    refused query is re-executed.
    """
    if compilation.auto_engine == "join-graph":
        return run_join_graph(compilation, context, timeout_seconds, bindings, timings)
    return run_stacked(compilation, context, timeout_seconds, bindings, timings)


#: Configuration name → executor; the single dispatch table shared by
#: ``XQueryProcessor.execute`` and ``PreparedQuery.run``.
EXECUTORS = {
    "auto": run_auto,
    "stacked": run_stacked,
    "isolated": run_isolated,
    "join-graph": run_join_graph,
    "sql": run_sql,
    "sql-stacked": run_sql_stacked,
}


def execute_compiled(
    compilation: CompilationResult,
    context: ExecutionContext,
    configuration: str = "auto",
    timeout_seconds: Optional[float] = None,
    bindings: Optional[Mapping[str, object]] = None,
    timings: Optional[StageTimings] = None,
) -> ExecutionOutcome:
    """Execute a compiled plan against a context in one configuration.

    This is the whole worker-side contract of the serving layer: a
    (compilation, context) pair plus a configuration name — no processor,
    no locks beyond the ones the context's members own.
    """
    try:
        runner = EXECUTORS[configuration if configuration is not None else "auto"]
    except KeyError:
        expected = ", ".join(EXECUTORS)
        raise ValueError(
            f"unknown configuration {configuration!r} (expected one of: {expected})"
        ) from None
    return runner(compilation, context, timeout_seconds, bindings, timings)


def explain_compiled(
    compilation: CompilationResult,
    context: ExecutionContext,
    bindings: Optional[Mapping[str, object]] = None,
) -> str:
    """The relational back-end's execution plan for the query's join graph."""
    if compilation.join_graph is None:
        raise JoinGraphError(
            compilation.join_graph_error or "the query has no isolated join graph"
        )
    values = check_bindings(compilation.external_variables, bindings)
    return context.engine.explain(compilation.join_graph, bindings=values or None)

"""Query-service facade: multi-document sessions and prepared queries.

The paper evaluates one encoded document at a time; a production service
instead keeps a *catalog* of documents and amortizes compilation over
repeated traffic.  This module provides that layer:

* :class:`DocumentStore` — a named-document catalog over one shared
  ``pre|size|level|...`` encoding (``doc("uri")`` resolves against it), with
  the original trees retained for the navigational (pureXML) configuration;
* :class:`Session` — the service entry point: register documents, run
  ad-hoc queries, and :meth:`~Session.prepare` parameterized queries whose
  compiled plans live in a shared :class:`~repro.core.pipeline.PlanCache`.

The plan cache survives document registration (compiled plans reference the
``doc`` table and document URIs, never document content), so a long-running
session keeps its compiled queries while its catalog grows.

Example:

>>> session = Session()
>>> session.register("books.xml", "<books><book>A</book><book>B</book></books>")
0
>>> session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
6
>>> session.execute('doc("books.xml")/child::books/child::book').node_count
2
>>> prepared = session.prepare(
...     'declare variable $n as xs:decimal external; doc("tiny.xml")/descendant::b[. > $n]')
>>> prepared.run({"n": 1}).node_count
1
>>> sorted(session.document_uris())
['books.xml', 'tiny.xml']
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import CatalogError
from repro.core.pipeline import (
    ExecutionOutcome,
    PlanCache,
    PreparedQuery,
    XQueryProcessor,
)
from repro.core.rewriter import JoinGraphIsolation
from repro.purexml.engine import PureXMLEngine
from repro.sqlbackend.backend import SQLiteBackend
from repro.purexml.storage import XMLColumnStore
from repro.xmldb.encoding import DocumentEncoding
from repro.xmldb.infoset import NodeKind, XMLNode
from repro.xmldb.parser import parse_xml


class DocumentStore:
    """A catalog of named documents sharing one ``doc`` encoding.

    The encoding is append-only (``pre`` ranks of already-registered
    documents never change), which is what lets sessions keep compiled
    plans and previously returned ``pre`` ranks valid as the catalog grows.
    """

    def __init__(self) -> None:
        self.encoding = DocumentEncoding()
        self._documents: dict[str, XMLNode] = {}
        #: Bumped on every registration; sessions use it to refresh derived
        #: state (doc table, database, indexes) lazily.
        self.version = 0

    # -- registration ----------------------------------------------------------

    def register_xml(self, uri: str, xml_text: str) -> int:
        """Parse ``xml_text`` and register it under ``uri``.

        Returns the ``pre`` rank of the new document's DOC row.
        """
        return self.register_document(parse_xml(xml_text, uri=uri))

    def register_document(self, doc: XMLNode) -> int:
        """Register an already-parsed document tree (a DOC node with a URI)."""
        if doc.kind is not NodeKind.DOC:
            raise CatalogError("register_document expects a document node")
        uri = doc.name
        if not uri:
            raise CatalogError("documents need a URI (the DOC node's name)")
        if uri in self._documents:
            raise CatalogError(f"document {uri!r} is already registered")
        root = self.encoding.append_document(doc)
        self._documents[uri] = doc
        self.version += 1
        return root

    # -- lookups ---------------------------------------------------------------

    def document(self, uri: str) -> XMLNode:
        """The original tree of a registered document (used by pureXML)."""
        try:
            return self._documents[uri]
        except KeyError:
            raise CatalogError(f"unknown document {uri!r}") from None

    def document_uris(self) -> list[str]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def column_store(self, uri: str, segmented: bool = False) -> XMLColumnStore:
        """An XML column store over one document (the pureXML substrate)."""
        doc = self.document(uri)
        if segmented:
            return XMLColumnStore.from_segments(doc)
        return XMLColumnStore.whole(doc)


class Session:
    """The query-service entry point: documents in, (prepared) queries out.

    A session wraps a :class:`DocumentStore` and lazily maintains an
    :class:`~repro.core.pipeline.XQueryProcessor` over its current state.
    The :class:`~repro.core.pipeline.PlanCache` is owned by the *session*
    and handed to every processor rebuild, so compiled plans survive
    document registration; :class:`~repro.core.pipeline.PreparedQuery`
    handles resolve the processor at execution time and therefore always
    run against the current catalog.
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        default_document: Optional[str] = None,
        with_default_indexes: bool = True,
        add_serialization_step: bool = False,
        plan_cache_size: int = 128,
        sql_backend: Optional[SQLiteBackend] = None,
    ):
        self.store = store or DocumentStore()
        self.default_document = default_document
        self.with_default_indexes = with_default_indexes
        self.add_serialization_step = add_serialization_step
        self.plan_cache = PlanCache(plan_cache_size)
        #: The session-owned SQLite mirror of the catalog.  Handed to every
        #: processor rebuild, so registration only ever *appends* to it
        #: (incremental sync) and ``configuration="sql"`` keeps its loaded
        #: database and statistics across catalog growth — exactly like the
        #: plan cache keeps compiled plans.  Pass a file-backed
        #: :class:`~repro.sqlbackend.backend.SQLiteBackend` to persist the
        #: mirror on disk.
        self.sql_backend = sql_backend or SQLiteBackend()
        self._processor: Optional[XQueryProcessor] = None
        self._processor_version = -1

    # -- documents -------------------------------------------------------------

    def register(self, uri: str, xml_text: str) -> int:
        """Register an XML document under ``uri``; returns its DOC ``pre`` rank."""
        return self.store.register_xml(uri, xml_text)

    def register_document(self, doc: XMLNode) -> int:
        """Register an already-parsed document tree."""
        return self.store.register_document(doc)

    def document_uris(self) -> list[str]:
        return self.store.document_uris()

    # -- the current processor ---------------------------------------------------

    @property
    def processor(self) -> XQueryProcessor:
        """The processor over the store's *current* state (lazily refreshed)."""
        if self.store.version == self._processor_version and self._processor is not None:
            return self._processor
        if not len(self.store):
            raise CatalogError("the session has no registered documents yet")
        self._processor = XQueryProcessor(
            self.store.encoding,
            default_document=self.default_document,
            with_default_indexes=self.with_default_indexes,
            add_serialization_step=self.add_serialization_step,
            plan_cache=self.plan_cache,
            sql_backend=self.sql_backend,
        )
        self._processor_version = self.store.version
        return self._processor

    # -- queries -----------------------------------------------------------------

    def prepare(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> PreparedQuery:
        """Compile ``source`` once (through the shared plan cache).

        The handle stays valid across later document registrations: it
        re-resolves the session's processor on every
        :meth:`~repro.core.pipeline.PreparedQuery.run`.
        """
        compilation = self.processor.compile(source, isolation)
        return PreparedQuery(compilation, lambda: self.processor)

    def execute(
        self,
        source: str,
        bindings: Optional[Mapping[str, object]] = None,
        timeout_seconds: Optional[float] = None,
        configuration: str = "auto",
    ) -> ExecutionOutcome:
        """Execute ad-hoc; ``configuration`` picks the engine (default auto).

        ``"sql"`` routes through the session's SQLite mirror (the catalog
        is synced incrementally before execution).
        """
        return self.processor.execute(
            source,
            timeout_seconds=timeout_seconds,
            bindings=bindings,
            configuration=configuration,
        )

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the session's shared plan cache.

        The counters span processor rebuilds (the cache is session-owned),
        so benchmarks and tests can assert that document registration does
        not invalidate compiled plans — for any backend configuration.
        """
        return self.plan_cache.stats()

    def explain(
        self, source: str, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """DB2-style explain of the relational plan for ``source``."""
        return self.processor.explain(source, bindings=bindings)

    def serialize(self, items: list[int], separator: str = "") -> str:
        """Serialize result ``pre`` ranks back to XML text."""
        return self.processor.serialize(items, separator)

    # -- the navigational configuration -------------------------------------------

    def purexml_engine(self, uri: str, segmented: bool = False) -> PureXMLEngine:
        """A pureXML engine over one registered document.

        Prepared pureXML queries (``engine.prepare(...)``) bind external
        variables into the surface AST per run, exactly like the relational
        configurations bind parameter slots.
        """
        return PureXMLEngine(self.store.column_store(uri, segmented=segmented))

"""Query-service facade: multi-document sessions and prepared queries.

The paper evaluates one encoded document at a time; a production service
instead keeps a *catalog* of documents and amortizes compilation over
repeated traffic.  This module provides that layer:

* :class:`DocumentStore` — a named-document catalog over one shared
  ``pre|size|level|...`` encoding (``doc("uri")`` resolves against it), with
  the original trees retained for the navigational (pureXML) configuration;
* :class:`Session` — the service entry point: register documents, run
  ad-hoc queries, and :meth:`~Session.prepare` parameterized queries whose
  compiled plans live in a shared :class:`~repro.core.pipeline.PlanCache`.

The plan cache survives document registration (compiled plans reference the
``doc`` table and document URIs, never document content), so a long-running
session keeps its compiled queries while its catalog grows.

Example:

>>> session = Session()
>>> session.register("books.xml", "<books><book>A</book><book>B</book></books>")
0
>>> session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
6
>>> session.execute('doc("books.xml")/child::books/child::book').node_count
2
>>> prepared = session.prepare(
...     'declare variable $n as xs:decimal external; doc("tiny.xml")/descendant::b[. > $n]')
>>> prepared.run({"n": 1}).node_count
1
>>> sorted(session.document_uris())
['books.xml', 'tiny.xml']
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional

from repro.errors import CatalogError
from repro.core.pipeline import (
    ExecutionOutcome,
    PlanCache,
    PreparedQuery,
    XQueryProcessor,
)
from repro.core.rewriter import JoinGraphIsolation
from repro.purexml.engine import PureXMLEngine
from repro.sqlbackend.backend import SQLiteBackend
from repro.purexml.storage import XMLColumnStore
from repro.xmldb.encoding import DocumentEncoding
from repro.xmldb.infoset import NodeKind, XMLNode
from repro.xmldb.parser import parse_xml


class DocumentStore:
    """A catalog of named documents sharing one ``doc`` encoding.

    The encoding is append-only (``pre`` ranks of already-registered
    documents never change), which is what lets sessions keep compiled
    plans and previously returned ``pre`` ranks valid as the catalog grows.

    Thread-safe: registrations serialize behind :attr:`lock` (a write
    lock), and :attr:`version` is only ever bumped *after* the encoding
    append completed — a reader that observes version ``v`` can therefore
    snapshot the first ``len(encoding)`` rows without seeing a torn
    document.  Derived-state builders (the session's processor rebuild)
    take the same lock so a registration can never interleave with a
    snapshot.
    """

    def __init__(self) -> None:
        self.encoding = DocumentEncoding()
        self._documents: dict[str, XMLNode] = {}
        #: Serializes registration and derived-state snapshots.
        self.lock = threading.RLock()
        #: Bumped on every registration; sessions use it to refresh derived
        #: state (doc table, database, indexes) lazily.
        self.version = 0

    # -- registration ----------------------------------------------------------

    def register_xml(self, uri: str, xml_text: str) -> int:
        """Parse ``xml_text`` and register it under ``uri``.

        Returns the ``pre`` rank of the new document's DOC row.
        """
        return self.register_document(parse_xml(xml_text, uri=uri))

    def register_document(self, doc: XMLNode) -> int:
        """Register an already-parsed document tree (a DOC node with a URI)."""
        if doc.kind is not NodeKind.DOC:
            raise CatalogError("register_document expects a document node")
        uri = doc.name
        if not uri:
            raise CatalogError("documents need a URI (the DOC node's name)")
        with self.lock:
            if uri in self._documents:
                raise CatalogError(f"document {uri!r} is already registered")
            root = self.encoding.append_document(doc)
            self._documents[uri] = doc
            self.version += 1
            return root

    # -- lookups ---------------------------------------------------------------

    def document(self, uri: str) -> XMLNode:
        """The original tree of a registered document (used by pureXML)."""
        with self.lock:
            try:
                return self._documents[uri]
            except KeyError:
                raise CatalogError(f"unknown document {uri!r}") from None

    def document_uris(self) -> list[str]:
        with self.lock:
            return list(self._documents)

    def __len__(self) -> int:
        with self.lock:
            return len(self._documents)

    def __contains__(self, uri: str) -> bool:
        with self.lock:
            return uri in self._documents

    def column_store(self, uri: str, segmented: bool = False) -> XMLColumnStore:
        """An XML column store over one document (the pureXML substrate)."""
        doc = self.document(uri)
        if segmented:
            return XMLColumnStore.from_segments(doc)
        return XMLColumnStore.whole(doc)


class Session:
    """The query-service entry point: documents in, (prepared) queries out.

    A session wraps a :class:`DocumentStore` and lazily maintains an
    :class:`~repro.core.pipeline.XQueryProcessor` over its current state.
    The :class:`~repro.core.pipeline.PlanCache` is owned by the *session*
    and handed to every processor rebuild, so compiled plans survive
    document registration; :class:`~repro.core.pipeline.PreparedQuery`
    handles resolve the processor at execution time and therefore always
    run against the current catalog.

    Thread-safe: the processor refresh is **copy-on-write** — a rebuild
    constructs a complete new processor (doc table, database, indexes,
    frozen execution context) off to the side and then swaps it in with one
    atomic assignment, so concurrent queries either keep using the previous
    processor (whose catalog snapshot stays valid: the encoding is
    append-only) or see the finished new one, never a half-built
    intermediate.  The rebuild itself holds :attr:`_rebuild_lock` (one
    rebuild at a time) and the store's registration lock (no document
    append can interleave with the snapshot).  The plan cache and the
    SQLite mirror are shared across rebuilds and are themselves
    thread-safe.
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        default_document: Optional[str] = None,
        with_default_indexes: bool = True,
        add_serialization_step: bool = False,
        plan_cache_size: int = 128,
        sql_backend: Optional[SQLiteBackend] = None,
        columnar_execution: bool = True,
    ):
        self.store = store or DocumentStore()
        self.default_document = default_document
        self.with_default_indexes = with_default_indexes
        self.add_serialization_step = add_serialization_step
        self.columnar_execution = columnar_execution
        self.plan_cache = PlanCache(plan_cache_size)
        #: The session-owned SQLite mirror of the catalog.  Handed to every
        #: processor rebuild, so registration only ever *appends* to it
        #: (incremental sync) and ``configuration="sql"`` keeps its loaded
        #: database and statistics across catalog growth — exactly like the
        #: plan cache keeps compiled plans.  Pass a file-backed
        #: :class:`~repro.sqlbackend.backend.SQLiteBackend` to persist the
        #: mirror on disk.
        self.sql_backend = sql_backend or SQLiteBackend()
        #: The current ``(store version, processor)`` pair, swapped
        #: atomically by :attr:`processor` rebuilds (copy-on-write).
        self._current: Optional[tuple[int, XQueryProcessor]] = None
        self._rebuild_lock = threading.Lock()

    # -- documents -------------------------------------------------------------

    def register(self, uri: str, xml_text: str) -> int:
        """Register an XML document under ``uri``; returns its DOC ``pre`` rank."""
        return self.store.register_xml(uri, xml_text)

    def register_document(self, doc: XMLNode) -> int:
        """Register an already-parsed document tree."""
        return self.store.register_document(doc)

    def document_uris(self) -> list[str]:
        return self.store.document_uris()

    # -- the current processor ---------------------------------------------------

    @property
    def processor(self) -> XQueryProcessor:
        """The processor over the store's *current* state (lazily refreshed).

        Fast path: one attribute read + version compare, no locks.  On a
        version change the rebuild happens under :attr:`_rebuild_lock`
        (double-checked, so racing threads rebuild once) and the new
        processor is published with an atomic tuple swap.
        """
        current = self._current
        if current is not None and current[0] == self.store.version:
            return current[1]
        with self._rebuild_lock:
            current = self._current
            if current is not None and current[0] == self.store.version:
                return current[1]
            with self.store.lock:
                if not len(self.store):
                    raise CatalogError("the session has no registered documents yet")
                version = self.store.version
                processor = XQueryProcessor(
                    self.store.encoding,
                    default_document=self.default_document,
                    with_default_indexes=self.with_default_indexes,
                    add_serialization_step=self.add_serialization_step,
                    plan_cache=self.plan_cache,
                    sql_backend=self.sql_backend,
                    columnar_execution=self.columnar_execution,
                )
            self._current = (version, processor)
            return processor

    # -- queries -----------------------------------------------------------------

    def prepare(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> PreparedQuery:
        """Compile ``source`` once (through the shared plan cache).

        The handle stays valid across later document registrations: it
        re-resolves the session's processor on every
        :meth:`~repro.core.pipeline.PreparedQuery.run`.
        """
        compilation = self.processor.compile(source, isolation)
        return PreparedQuery(compilation, lambda: self.processor)

    def execute(
        self,
        source: str,
        bindings: Optional[Mapping[str, object]] = None,
        timeout_seconds: Optional[float] = None,
        configuration: str = "auto",
    ) -> ExecutionOutcome:
        """Execute ad-hoc; ``configuration`` picks the engine (default auto).

        ``"sql"`` routes through the session's SQLite mirror (the catalog
        is synced incrementally before execution).
        """
        return self.processor.execute(
            source,
            timeout_seconds=timeout_seconds,
            bindings=bindings,
            configuration=configuration,
        )

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the session's shared plan cache.

        The counters span processor rebuilds (the cache is session-owned),
        so benchmarks and tests can assert that document registration does
        not invalidate compiled plans — for any backend configuration.
        """
        return self.plan_cache.stats()

    def mirror_health(self) -> dict[str, object]:
        """Health report of the session's SQLite mirror (self-healing facade).

        Runs :meth:`~repro.sqlbackend.backend.SQLiteBackend.verify_integrity`
        — ``PRAGMA integrity_check`` plus a row-for-row prefix comparison
        against the canonical in-memory encoding — and reports how many
        times the mirror has been quarantined and rebuilt from that
        canonical store.  Call :meth:`heal_mirror` to repair an unhealthy
        mirror in place.
        """
        return {
            "healthy": self.sql_backend.verify_integrity(),
            "rebuilds": self.sql_backend.rebuilds,
            "loaded_rows": self.sql_backend.loaded_rows,
        }

    def heal_mirror(self) -> bool:
        """Verify the SQLite mirror and rebuild it if corrupted.

        Returns True when a rebuild happened (the old image is quarantined
        and every pooled reader transparently re-clones), False when the
        mirror was already healthy.
        """
        return self.sql_backend.heal()

    def explain(
        self, source: str, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """DB2-style explain of the relational plan for ``source``."""
        return self.processor.explain(source, bindings=bindings)

    def serialize(self, items: list[int], separator: str = "") -> str:
        """Serialize result ``pre`` ranks back to XML text."""
        return self.processor.serialize(items, separator)

    # -- the navigational configuration -------------------------------------------

    def purexml_engine(self, uri: str, segmented: bool = False) -> PureXMLEngine:
        """A pureXML engine over one registered document.

        Prepared pureXML queries (``engine.prepare(...)``) bind external
        variables into the surface AST per run, exactly like the relational
        configurations bind parameter slots.
        """
        return PureXMLEngine(self.store.column_store(uri, segmented=segmented))

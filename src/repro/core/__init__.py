"""Join graph isolation — the paper's contribution.

* :mod:`repro.core.properties` — inference of the plan properties
  ``icols`` / ``const`` / ``key`` / ``set`` (Tables II-V of the paper).
* :mod:`repro.core.rules` — the rewrite rules (1)-(17) of Fig. 5 plus the
  key-self-join (context join) elimination the final plans of Fig. 7/8 rely
  on.
* :mod:`repro.core.rewriter` — the goal-directed peephole rewriter
  (ϱ goal first, then the δ/⋈ goals, house-cleaning throughout).
* :mod:`repro.core.joingraph` — extraction of the isolated join graph and
  plan tail from a rewritten plan.
* :mod:`repro.core.sqlgen` — SQL emission: one
  ``SELECT [DISTINCT] … FROM doc d1, … WHERE … ORDER BY …`` block per
  isolated plan (Fig. 8 / Fig. 9), plus a stacked CTE rendering of the
  unrewritten plan for comparison.
* :mod:`repro.core.pipeline` — the end-to-end processor
  (XQuery text → plans → SQL → results).
"""

from repro.core.joingraph import JoinGraph, PlanTail, extract_join_graph
from repro.core.pipeline import CompilationResult, XQueryProcessor
from repro.core.properties import PlanProperties, infer_properties
from repro.core.rewriter import IsolationReport, JoinGraphIsolation, isolate
from repro.core.sqlgen import generate_join_graph_sql, generate_stacked_sql

__all__ = [
    "CompilationResult",
    "IsolationReport",
    "JoinGraph",
    "JoinGraphIsolation",
    "PlanProperties",
    "PlanTail",
    "XQueryProcessor",
    "extract_join_graph",
    "generate_join_graph_sql",
    "generate_stacked_sql",
    "infer_properties",
    "isolate",
]

"""Seeded random generation of fragment-conformant XQuery FLWOR queries.

The differential suites (``tests/integration/``) pin down the engine
configurations on *hand-picked* queries; this module generates arbitrarily
many more from the same fragment — paths, predicates, positionals, value
joins, aggregates (in return and ``where`` position), ``order by``,
``exists``/``empty`` and ``some``/``every`` quantifiers — so the
bit-for-bit property is exercised over combinations nobody thought to
write down.  It is the repository's property-based stress harness: the
tier-1 suite runs a fixed seeded corpus (~200 cases), and CI runs a deeper
nightly sweep via ``python -m repro.testing.queries``.

Generation is deterministic: case *i* of seed *s* is produced by
``random.Random(f"{s}:{i}")``, so a failure report's ``(seed, index)``
pair reproduces the exact query forever.

The **differential contract** checked by :func:`check_differential`:

* ``stacked``, ``isolated`` and ``sql-stacked`` execute every generated
  query (they need no join graph) and must agree bit-for-bit;
* ``join-graph`` and ``sql`` either agree bit-for-bit too or refuse with
  the documented :class:`~repro.errors.JoinGraphError` — any other
  exception, anywhere, is a bug.

Queries run against the fixed :data:`DIFFERENTIAL_XML` document, whose
shape (persons with watches and optional profiles, items with optional
quantities, duplicate values on both sides of every join) the generator's
vocabulary mirrors, so generated predicates hit non-empty and empty
results in roughly equal measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import JoinGraphError

#: Document the generated queries run against.  Duplicate watch targets,
#: duplicate item names, a watch-less person, a profile-less person and a
#: quantity-less item give every generated predicate both matching and
#: non-matching rows to chew on.
DIFFERENTIAL_XML = """<site>
 <people>
  <person id="p0"><name>Zed</name><watch>i3</watch><watch>i1</watch>
    <profile income="72000"><age>44</age></profile></person>
  <person id="p1"><name>Ann</name><watch>i2</watch><watch>i3</watch></person>
  <person id="p2"><name>Mia</name>
    <profile income="31000"><age>29</age></profile></person>
  <person id="p3"><name>Ann</name><watch>i1</watch></person>
 </people>
 <items>
  <item id="i1"><name>Lamp</name><quantity>5</quantity></item>
  <item id="i2"><name>Desk</name><quantity>7</quantity></item>
  <item id="i3"><name>Lamp</name><quantity>2</quantity></item>
  <item id="i4"><name>Vase</name></item>
 </items>
</site>"""

#: The five engine configurations, oracle first.
CONFIGS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")

#: Configurations that interpret plans directly and therefore must never
#: refuse a generated (fragment-conformant) query.
TOTAL_CONFIGS = ("stacked", "isolated", "sql-stacked")

#: Configurations that require an isolated join graph; a generated query
#: may legitimately exceed the single-SFW fragment (e.g. nested aggregates
#: from an ``every`` desugaring), in which case these refuse with
#: :class:`JoinGraphError` — the *only* acceptable error class.
PARTIAL_CONFIGS = ("join-graph", "sql")


@dataclass(frozen=True)
class GeneratedQuery:
    """One generated case: the query, its provenance and its features."""

    seed: int
    index: int
    source: str
    #: Constructs the query exercises (``"positional"``, ``"order-by"``,
    #: ``"quantifier"``, ...) — lets sweeps report coverage per feature.
    features: tuple[str, ...]


@dataclass
class DifferentialOutcome:
    """What happened when one generated query ran on every configuration."""

    query: GeneratedQuery
    items: Optional[list] = None
    #: Configurations that raised JoinGraphError (always a subset of
    #: :data:`PARTIAL_CONFIGS` when the contract holds).
    refused: tuple[str, ...] = ()

    @property
    def ran_everywhere(self) -> bool:
        return not self.refused


# -- vocabulary -------------------------------------------------------------------

_WATCH_VALUES = ('"i1"', '"i2"', '"i3"', '"i9"')
_NAME_VALUES = ('"Ann"', '"Lamp"', '"Vase"', '"Nobody"')
_ID_VALUES = ('"p0"', '"p1"', '"i3"', '"i4"', '"x9"')
_NUMBERS = ("0", "2", "5", "31000", "72000")
_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: binding kind → (path under the bound variable, value pool) choices for
#: comparisons; the pools share values with the document so predicates are
#: selective rather than uniformly empty or uniformly full.
_VALUE_PATHS = {
    "person": (
        ("child::watch", _WATCH_VALUES),
        ("child::name/text()", _NAME_VALUES),
        ("attribute::id", _ID_VALUES),
        ("child::profile/attribute::income", _NUMBERS),
    ),
    "item": (
        ("child::name/text()", _NAME_VALUES),
        ("attribute::id", _ID_VALUES),
        ("child::quantity", _NUMBERS),
    ),
}

#: binding kind → node-sequence paths (existence tests, aggregates,
#: quantifier ranges).
_NODE_PATHS = {
    "person": ("child::watch", "child::profile", "child::nosuch"),
    "item": ("child::quantity", "child::name", "child::nosuch"),
}

#: binding kind → return-position paths.
_RETURN_PATHS = {
    "person": ("", "/child::name", "/attribute::id", "/child::watch"),
    "item": ("", "/child::name", "/attribute::id"),
}

_SEQUENCES = {
    "person": 'doc("site.xml")/descendant::person',
    "item": 'doc("site.xml")/descendant::item',
    "watch": 'doc("site.xml")/descendant::watch',
}

_ORDER_KEYS = {
    "person": "child::name/text()",
    "item": "child::name/text()",
    "watch": "text()",
}


class QueryGenerator:
    """Deterministic fragment-conformant query generation.

    Every production below stays inside the compiler's accepted fragment
    *by construction* (no ``or``, no arithmetic, ascending-only single-key
    ``order by``, single-binding quantifiers), so any error other than a
    join-graph refusal on the two SQL-bound configurations is an engine
    bug, not a generator artefact.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def case(self, index: int) -> GeneratedQuery:
        """Generate case ``index`` (stable under corpus size changes)."""
        rng = random.Random(f"{self.seed}:{index}")
        source, features = self._query(rng)
        return GeneratedQuery(self.seed, index, source, tuple(features))

    def corpus(self, count: int) -> list[GeneratedQuery]:
        return [self.case(index) for index in range(count)]

    # -- productions ---------------------------------------------------------------

    def _query(self, rng: random.Random) -> tuple[str, list[str]]:
        production = rng.choice(
            ("path", "path", "flwor", "flwor", "flwor", "flwor", "aggregate")
        )
        if production == "path":
            return self._path_query(rng)
        if production == "aggregate":
            return self._aggregate_query(rng)
        return self._flwor_query(rng)

    def _path_query(self, rng: random.Random) -> tuple[str, list[str]]:
        """A ddo path with an optional predicate or positional filter."""
        kind = rng.choice(("person", "item", "watch"))
        base = _SEQUENCES[kind]
        features = ["path"]
        choice = rng.random()
        if kind != "watch" and choice < 0.45:
            predicate, predicate_features = self._predicate(rng, kind)
            features += predicate_features
            tail = rng.choice(_RETURN_PATHS[kind])
            return f"{base}[{predicate}]{tail}", features
        if choice < 0.7:
            position = rng.choice((1, 2, 3, 9))
            features.append("positional")
            tail = rng.choice(_RETURN_PATHS[kind]) if kind != "watch" else ""
            return f"{base}[{position}]{tail}", features
        tail = rng.choice(_RETURN_PATHS[kind]) if kind != "watch" else ""
        return f"{base}{tail}", features

    def _predicate(self, rng: random.Random, kind: str) -> tuple[str, list[str]]:
        """A context-relative predicate for ``seq[...]`` position."""
        roll = rng.random()
        if roll < 0.5:
            path, pool = rng.choice(_VALUE_PATHS[kind])
            op = rng.choice(_COMPARISON_OPS)
            return f"{path} {op} {rng.choice(pool)}", ["comparison"]
        if roll < 0.8:
            test = rng.choice(("fn:exists", "fn:empty", "exists", "empty"))
            path = rng.choice(_NODE_PATHS[kind])
            return f"{test}({path})", ["exists-empty"]
        range_path = _NODE_PATHS[kind][0]  # watch / quantity
        if kind == "person":
            inner = f"$w/text() = {rng.choice(_WATCH_VALUES)}"
        else:
            inner = f"$w/text() > {rng.choice(_NUMBERS[:3])}"
        quantifier = rng.choice(("some", "every"))
        return (
            f"{quantifier} $w in {range_path} satisfies {inner}",
            ["quantifier"],
        )

    def _aggregate_query(self, rng: random.Random) -> tuple[str, list[str]]:
        """A top-level aggregate over a path."""
        function = rng.choice(("count", "count", "sum"))
        if function == "sum":
            argument = 'doc("site.xml")/descendant::quantity'
        else:
            kind = rng.choice(("person", "item", "watch"))
            argument = _SEQUENCES[kind]
        return f"fn:{function}({argument})", ["aggregate"]

    def _flwor_query(self, rng: random.Random) -> tuple[str, list[str]]:
        features = ["flwor"]
        bindings = [("p" if rng.random() < 0.5 else "i", None)]
        first_kind = "person" if bindings[0][0] == "p" else "item"
        bindings[0] = (bindings[0][0], first_kind)
        two_bindings = rng.random() < 0.35
        if two_bindings:
            second_kind = "item" if first_kind == "person" else "person"
            bindings.append(("q", second_kind))
            features.append("join" if rng.random() < 0.8 else "product")
        clauses = [
            f"for ${var} in {_SEQUENCES[kind]}" for var, kind in bindings
        ]
        where, where_features = self._where(rng, bindings, two_bindings)
        features += where_features
        if where:
            clauses.append(f"where {where}")
        order_by = not two_bindings and rng.random() < 0.3
        if order_by:
            var, kind = bindings[0]
            clauses.append(f"order by ${var}/{_ORDER_KEYS[kind]}")
            features.append("order-by")
        returned, return_features = self._return(rng, bindings[0])
        features += return_features
        clauses.append(f"return {returned}")
        return " ".join(clauses), features

    def _where(
        self,
        rng: random.Random,
        bindings: Sequence[tuple[str, str]],
        two_bindings: bool,
    ) -> tuple[Optional[str], list[str]]:
        conditions: list[str] = []
        features: list[str] = []
        if two_bindings and "join" in self._planned(rng):
            # Value join between the two bound sequences (watch ↔ item id
            # is the only shared value domain in the document).
            (a, _), (b, _) = bindings[0], bindings[1]
            person, item = (a, b) if bindings[0][1] == "person" else (b, a)
            conditions.append(
                f"${person}/child::watch = ${item}/attribute::id"
            )
            features.append("value-join")
        if not conditions or rng.random() < 0.4:
            var, kind = bindings[0]
            condition, condition_features = self._condition(rng, var, kind)
            conditions.append(condition)
            features += condition_features
        if not conditions:
            return None, features
        if rng.random() < 0.8 or len(conditions) > 1:
            return " and ".join(conditions), features
        return conditions[0], features

    @staticmethod
    def _planned(rng: random.Random) -> str:
        return "join" if rng.random() < 0.9 else "product"

    def _condition(
        self, rng: random.Random, var: str, kind: str
    ) -> tuple[str, list[str]]:
        roll = rng.random()
        if roll < 0.35:
            path, pool = rng.choice(_VALUE_PATHS[kind])
            op = rng.choice(_COMPARISON_OPS)
            return f"${var}/{path} {op} {rng.choice(pool)}", ["comparison"]
        if roll < 0.55:
            function = "count"
            path = rng.choice(_NODE_PATHS[kind])
            op = rng.choice(("=", ">", "<=", "!="))
            bound = rng.choice(("0", "1", "2"))
            return (
                f"fn:{function}(${var}/{path}) {op} {bound}",
                ["where-aggregate"],
            )
        if roll < 0.75:
            test = rng.choice(("fn:exists", "fn:empty"))
            path = rng.choice(_NODE_PATHS[kind])
            return f"{test}(${var}/{path})", ["exists-empty"]
        quantifier = rng.choice(("some", "every"))
        if kind == "person":
            range_path, inner = "child::watch", f"$w/text() = {rng.choice(_WATCH_VALUES)}"
        else:
            range_path, inner = (
                "child::quantity",
                f"$w/text() {rng.choice(('>', '<='))} {rng.choice(_NUMBERS[:3])}",
            )
        return (
            f"{quantifier} $w in ${var}/{range_path} satisfies {inner}",
            ["quantifier"],
        )

    def _return(
        self, rng: random.Random, binding: tuple[str, str]
    ) -> tuple[str, list[str]]:
        var, kind = binding
        if rng.random() < 0.25:
            path = rng.choice(_NODE_PATHS[kind])
            return f"fn:count(${var}/{path})", ["return-aggregate"]
        return f"${var}{rng.choice(_RETURN_PATHS[kind])}", []


# -- the differential check --------------------------------------------------------


def check_differential(session, query: GeneratedQuery) -> DifferentialOutcome:
    """Run one generated query on all five configurations and compare.

    Raises :class:`AssertionError` with the reproducing ``(seed, index,
    source)`` triple on any contract violation; returns the outcome (items
    plus which configurations legitimately refused) otherwise.
    """
    label = f"seed={query.seed} index={query.index} query={query.source!r}"
    oracle = session.execute(query.source, configuration=CONFIGS[0]).items
    refused = []
    for configuration in CONFIGS[1:]:
        try:
            items = session.execute(query.source, configuration=configuration).items
        except JoinGraphError:
            assert configuration in PARTIAL_CONFIGS, (
                f"{configuration} may not refuse a generated query ({label})"
            )
            refused.append(configuration)
            continue
        assert items == oracle, (
            f"{configuration} disagrees with the stacked oracle ({label}): "
            f"{items!r} != {oracle!r}"
        )
    return DifferentialOutcome(query, items=oracle, refused=tuple(refused))


def run_sweep(
    count: int, seed: int = 0, session=None
) -> tuple[list[DifferentialOutcome], dict]:
    """Run ``count`` generated cases; return outcomes and a feature census."""
    if session is None:
        from repro.core.session import Session

        session = Session()
        session.register("site.xml", DIFFERENTIAL_XML)
    generator = QueryGenerator(seed)
    outcomes = []
    census: dict = {"features": {}, "refusals": 0, "nonempty": 0}
    for query in generator.corpus(count):
        outcome = check_differential(session, query)
        outcomes.append(outcome)
        for feature in query.features:
            census["features"][feature] = census["features"].get(feature, 0) + 1
        if outcome.refused:
            census["refusals"] += 1
        if outcome.items:
            census["nonempty"] += 1
    return outcomes, census


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point for the nightly sweep: exits non-zero on violation."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    options = parser.parse_args(list(argv) if argv is not None else None)
    outcomes, census = run_sweep(options.count, options.seed)
    print(
        f"{len(outcomes)} generated queries agreed bit-for-bit "
        f"({census['refusals']} legitimate join-graph refusals, "
        f"{census['nonempty']} non-empty results)"
    )
    for feature, hits in sorted(census["features"].items()):
        print(f"  {feature:>16}: {hits}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Deterministic fault injection for the resilience test suite.

The paper's five engine configurations are proven bit-for-bit identical,
which makes *graceful degradation* a correctness property: when the RDBMS
path fails, an interpreted engine serves the same answer.  Proving that
the serving layer actually delivers this under backend faults needs a way
to make the backend fail **on command** — deterministically, per test,
without monkeypatching driver internals.

This module is that harness.  Production code calls :func:`fire` at named
**injection points**:

========================  ======================================================
point                     where it fires
========================  ======================================================
``backend.execute``       inside ``SQLiteBackend._run``, just before the
                          statement executes (inside the classification
                          boundary, so injected driver errors are translated
                          exactly like real ones)
``backend.sync``          inside ``SQLiteBackend.sync`` after the write lock
                          is taken
``pool.acquire``          at the top of ``ConnectionPool.acquire``
``mirror.clone``          before a pooled in-memory reader is (re)cloned from
                          the primary via the online-backup API
========================  ======================================================

When no :class:`FaultPlan` is installed, :func:`fire` is one module-global
read — the production overhead of the harness is a no-op function call.

Two injection modes, freely mixed on one plan:

* **scripted** — :meth:`FaultPlan.script` raises a given error the next
  *N* times a point fires (optionally after skipping the first *K*);
* **seeded-random storms** — :meth:`FaultPlan.storm` raises with
  probability ``rate`` from a :class:`random.Random` seeded per rule, so a
  chaos run is exactly reproducible from its seed.

Usage::

    from repro.testing.faults import FaultPlan

    with FaultPlan() as plan:
        plan.script("backend.execute",
                    sqlite3.OperationalError("database is locked"), times=2)
        plan.storm("pool.acquire",
                   sqlite3.OperationalError("disk I/O error"),
                   rate=0.5, seed=7)
        ...  # drive traffic; plan.fired counts what actually triggered

Plans are process-global (the production code cannot know which test is
running) and installation is exclusive: entering a second plan while one
is active raises, so concurrent test cases cannot silently interleave
their faults.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional, Union

#: The installed plan, or None.  Read unlocked on the hot path — a Python
#: global read is atomic, and the only writers are FaultPlan.__enter__/
#: __exit__ which serialize on _INSTALL_LOCK.
_active: Optional["FaultPlan"] = None
_INSTALL_LOCK = threading.Lock()

#: The injection points production code fires today (documentation +
#: typo guard: scripting an unknown point is almost certainly a test bug).
KNOWN_POINTS = frozenset(
    {"backend.execute", "backend.sync", "pool.acquire", "mirror.clone"}
)

#: An error to inject: an exception instance (re-raised as-is), an
#: exception class, or a zero-argument factory producing either.
ErrorSpec = Union[BaseException, Callable[[], BaseException]]


def fire(point: str) -> None:
    """Trigger injection point ``point``; raises if the active plan says so.

    The production-side hook: a no-op (one global read) unless a
    :class:`FaultPlan` is installed *and* has a matching rule that decides
    to fire.
    """
    plan = _active
    if plan is not None:
        plan._fire(point)


def injection_counts() -> dict:
    """Per-point counts of faults actually raised by the active plan.

    Empty when no plan is installed — convenient for assertions that a
    chaos run really exercised its points.
    """
    plan = _active
    return dict(plan.fired) if plan is not None else {}


class _Rule:
    """One injection rule at one point (scripted or probabilistic)."""

    def __init__(
        self,
        point: str,
        error: ErrorSpec,
        times: Optional[int] = None,
        after: int = 0,
        rate: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        self.point = point
        self.error = error
        self.remaining = times
        self.skip = after
        self.rate = rate
        self.rng = random.Random(seed) if rate is not None else None

    def should_fire(self) -> bool:
        """Decide (and consume budget) under the owning plan's lock."""
        if self.skip > 0:
            self.skip -= 1
            return False
        if self.rng is not None:
            if self.rng.random() >= self.rate:
                return False
        if self.remaining is not None:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
        return True

    def build_error(self) -> BaseException:
        error = self.error
        if isinstance(error, BaseException):
            return error
        return error()  # class or factory


class FaultPlan:
    """A set of injection rules, installed process-wide as a context manager.

    Thread-safe: rules are consulted and their budgets consumed under one
    internal lock, so a scripted ``times=2`` fires exactly twice no matter
    how many worker threads race through the point.
    """

    def __init__(self) -> None:
        self._rules: dict[str, list[_Rule]] = {}
        self._lock = threading.Lock()
        #: point -> number of faults actually raised.
        self.fired: dict[str, int] = {}

    # -- authoring ---------------------------------------------------------------

    def script(
        self,
        point: str,
        error: ErrorSpec,
        times: int = 1,
        after: int = 0,
    ) -> "FaultPlan":
        """Raise ``error`` the next ``times`` firings of ``point``.

        ``after`` skips that many firings first (fail the *third* sync,
        not the first).  Returns the plan for chaining.
        """
        self._add(_Rule(point, error, times=times, after=after))
        return self

    def storm(
        self,
        point: str,
        error: ErrorSpec,
        rate: float,
        seed: int,
        times: Optional[int] = None,
    ) -> "FaultPlan":
        """Raise ``error`` with probability ``rate`` per firing of ``point``.

        The decision stream comes from ``random.Random(seed)``, so a storm
        is exactly reproducible; ``times`` optionally caps the total number
        of faults raised.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("storm rate must be within [0, 1]")
        self._add(_Rule(point, error, times=times, rate=rate, seed=seed))
        return self

    def _add(self, rule: _Rule) -> None:
        if rule.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {rule.point!r} "
                f"(known: {', '.join(sorted(KNOWN_POINTS))})"
            )
        with self._lock:
            self._rules.setdefault(rule.point, []).append(rule)

    # -- the firing side ---------------------------------------------------------

    def _fire(self, point: str) -> None:
        with self._lock:
            for rule in self._rules.get(point, ()):
                if rule.should_fire():
                    self.fired[point] = self.fired.get(point, 0) + 1
                    raise rule.build_error()

    # -- installation ------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        global _active
        with _INSTALL_LOCK:
            if _active is not None:
                raise RuntimeError("another FaultPlan is already installed")
            _active = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _active
        with _INSTALL_LOCK:
            if _active is self:
                _active = None

"""Deterministic testing infrastructure: the fault-injection harness.

:mod:`repro.testing.faults` provides named injection points that the
production backend/pool code calls on its hot paths; when no plan is
installed the call is a single global read, so the harness costs nothing
in normal operation.
"""

from repro.testing.faults import FaultPlan, fire, injection_counts

__all__ = ["FaultPlan", "fire", "injection_counts"]

"""Benchmark workloads, dataset builders and reporting helpers.

The actual pytest-benchmark entry points live under ``benchmarks/``; this
package holds the reusable pieces: the paper's query set Q1-Q6
(:mod:`workloads`), dataset construction, the timing/timeout runner and the
table/figure reporters (:mod:`runner`).
"""

from repro.bench.workloads import (
    BenchmarkDataset,
    BenchmarkQuery,
    WORKLOAD,
    build_dblp_dataset,
    build_xmark_dataset,
)
from repro.bench.runner import ConfigurationTiming, TableNineRow, run_table_nine_row

__all__ = [
    "BenchmarkDataset",
    "BenchmarkQuery",
    "ConfigurationTiming",
    "TableNineRow",
    "WORKLOAD",
    "build_dblp_dataset",
    "build_xmark_dataset",
    "run_table_nine_row",
]

"""The XMark Q1-Q20 query suite, adapted to the accepted fragment.

Single source of truth for the full benchmark suite [Schmidt et al.,
VLDB 2002]: the differential test gate
(``tests/integration/test_xmark_suite.py``) and the speedup benchmark
(``benchmarks/bench_xmark.py``) both consume :data:`XMARK_SUITE`, so a
query adaptation can never drift between what is *verified* and what is
*timed*.

Each query preserves its original's access pattern — the joins,
predicates, positionals, quantifiers and aggregates the paper's compiler
has to handle — within the accepted fragment; three (Q7, Q14, Q18) are
kept in their out-of-fragment form as executable refusal annotations
(see :attr:`XMarkCase.refusal`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import XQuerySyntaxError


@dataclass(frozen=True)
class XMarkCase:
    """One XMark query: either runs everywhere or refuses everywhere."""

    name: str
    xquery: str
    description: str
    #: Documented error class when the query is outside the fragment; the
    #: refusal must be identical on every configuration (it happens at
    #: parse/normalize time, before any engine is chosen).
    refusal: Optional[type] = None
    #: Sanity floor on the oracle's item count for the tier-1 differential
    #: dataset (``tests/integration/test_xmark_suite.py``) — guards against
    #: a query silently degenerating to the empty sequence on a regenerated
    #: dataset, which would make the comparison vacuous.
    min_items: int = 1
    #: Join-heavy queries (value joins over two or more bound sequences)
    #: carry the paper's headline speedup — the benchmark's >= 5x gate
    #: applies to exactly these.
    join_heavy: bool = False
    #: Escape hatch for queries whose *interpreted* join graph would be
    #: intractable at benchmark scale.  Currently none: the shared
    #: window-scope pruning (``WindowSpec.scope``) keeps even Q3 — two
    #: windowed ranks compared by an inequality — tractable, since each
    #: rank pass runs over its own join closure instead of the full
    #: alias prefix.
    interp_join_graph: bool = True


XMARK_SUITE: tuple[XMarkCase, ...] = (
    XMarkCase(
        "Q1",
        '/site/people/person[@id = "person0"]/name/text()',
        "exact-match attribute lookup",
    ),
    XMarkCase(
        "Q2",
        "for $b in /site/open_auctions/open_auction "
        "return $b/bidder[1]/increase/text()",
        "positional predicate inside a FLWOR body (windowed rank)",
    ),
    XMarkCase(
        "Q3",
        "for $b in /site/open_auctions/open_auction "
        "where $b/bidder[1]/increase/text() <= $b/bidder[2]/increase/text() "
        "return $b/initial",
        "two positional ranks compared in a where clause "
        "(original multiplies by 2; the arithmetic-free comparison keeps "
        "both windowed ranks)",
    ),
    XMarkCase(
        "Q4",
        "for $b in /site/open_auctions/open_auction "
        'where some $pr in $b/bidder/personref satisfies $pr/@person = "person3" '
        "return $b/initial",
        "existential quantifier over bidders "
        "(original compares node order of two witnesses)",
    ),
    XMarkCase(
        "Q5",
        "fn:count(for $i in /site/closed_auctions/closed_auction "
        "where $i/price > 40 return $i/price)",
        "count over a where-filtered FLWOR",
    ),
    XMarkCase(
        "Q6",
        "for $r in /site/regions return fn:count($r/descendant::item)",
        "per-region descendant count",
    ),
    XMarkCase(
        "Q7",
        "fn:count(/site/descendant::description) + "
        "fn:count(/site/descendant::annotation)",
        "adding two counts — arithmetic is outside the fragment",
        refusal=XQuerySyntaxError,
    ),
    XMarkCase(
        "Q8",
        "for $p in /site/people/person "
        "return fn:count(/site/closed_auctions/closed_auction"
        "[buyer/@person = $p/@id])",
        "items bought per person (correlated count — the duplicate-value "
        "decode regression)",
        min_items=10,  # one count per person, duplicates kept
        join_heavy=True,
    ),
    XMarkCase(
        "Q9",
        "for $p in /site/people/person "
        "for $ca in /site/closed_auctions/closed_auction "
        "for $i in /site/regions/europe/item "
        "where $ca/buyer/@person = $p/@id and $ca/itemref/@item = $i/@id "
        "return $i/name",
        "three-way value join: European items with their buyers",
        join_heavy=True,
    ),
    XMarkCase(
        "Q10",
        "for $c in /site/categories/category for $p in /site/people/person "
        "where $p/profile/interest/@category = $c/@id return $p/name",
        "persons grouped by interest category "
        "(original materializes element-constructed groups)",
        join_heavy=True,
    ),
    XMarkCase(
        "Q11",
        "for $p in /site/people/person for $o in /site/open_auctions/open_auction "
        "where $p/profile/@income > $o/initial return $p/name",
        "theta join of incomes against open auctions "
        "(original divides income by 5000)",
    ),
    XMarkCase(
        "Q12",
        "for $p in /site/people/person for $o in /site/open_auctions/open_auction "
        "where $p/profile/@income > $o/initial and $p/profile/@income > 50000 "
        "return $p/name",
        "Q11 restricted to the rich",
    ),
    XMarkCase(
        "Q13",
        "/site/regions/australia/item/name",
        "direct path projection of one region's items",
    ),
    XMarkCase(
        "Q14",
        "for $i in /site/descendant::item "
        'where contains($i/description, "gold") return $i/name',
        "full-text contains() — string functions are outside the fragment",
        refusal=XQuerySyntaxError,
    ),
    XMarkCase(
        "Q15",
        "/site/closed_auctions/closed_auction/annotation/description/text/text()",
        "deep path chain into annotations",
    ),
    XMarkCase(
        "Q16",
        "for $a in /site/closed_auctions/closed_auction "
        "where fn:exists($a/annotation/description/text) "
        "return $a/seller/@person",
        "exists() guard over the annotation path "
        "(original spells not(empty(...)))",
    ),
    XMarkCase(
        "Q17",
        "for $p in /site/people/person "
        "where fn:empty($p/profile) return $p/name",
        "persons without a profile (empty() through the count=0 rule)",
    ),
    XMarkCase(
        "Q18",
        "declare function local:convert($v) { $v } "
        "local:convert(/site/open_auctions/open_auction/initial)",
        "user-defined functions are outside the fragment",
        refusal=XQuerySyntaxError,
    ),
    XMarkCase(
        "Q19",
        "for $i in /site/regions/descendant::item "
        "order by $i/location/text() return $i/name",
        "order by over all items (the ORD rule's re-ranked loop)",
        min_items=12,  # items_per_region x regions on the tier-1 dataset
    ),
    XMarkCase(
        "Q20",
        "fn:count(/site/people/person[profile/@income > 50000])",
        "counting an income bracket (original builds four brackets with "
        "arithmetic percentages)",
    ),
)

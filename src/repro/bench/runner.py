"""Timing / timeout runner and Table IX reporting helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import JoinGraphError, QueryTimeoutError
from repro.bench.workloads import BenchmarkDataset, BenchmarkQuery
from repro.core.pipeline import XQueryProcessor
from repro.purexml.engine import PureXMLEngine


@dataclass
class ConfigurationTiming:
    """One cell of Table IX: a wall-clock time or DNF."""

    seconds: Optional[float]
    node_count: Optional[int] = None
    dnf: bool = False

    def render(self) -> str:
        if self.dnf or self.seconds is None:
            return "DNF"
        return f"{self.seconds:8.3f}"


@dataclass
class TableNineRow:
    """One row of Table IX: a query in all four configurations."""

    query: str
    result_nodes: Optional[int]
    stacked: ConfigurationTiming
    join_graph: ConfigurationTiming
    purexml_whole: ConfigurationTiming
    purexml_segmented: ConfigurationTiming

    def render(self) -> str:
        return (
            f"{self.query:>4} | {self.result_nodes if self.result_nodes is not None else '-':>8} | "
            f"{self.stacked.render():>9} | {self.join_graph.render():>9} | "
            f"{self.purexml_whole.render():>9} | {self.purexml_segmented.render():>9}"
        )

    @staticmethod
    def header() -> str:
        return (
            "   Q | # nodes  |   stacked | joingraph | pureXML-w | pureXML-s\n"
            + "-" * 72
        )


def _time_call(call: Callable[[], object], budget_seconds: float) -> ConfigurationTiming:
    start = time.perf_counter()
    try:
        result = call()
    except QueryTimeoutError:
        return ConfigurationTiming(seconds=None, dnf=True)
    elapsed = time.perf_counter() - start
    node_count = getattr(result, "node_count", None)
    return ConfigurationTiming(seconds=elapsed, node_count=node_count)


def run_table_nine_row(
    query: BenchmarkQuery,
    dataset: BenchmarkDataset,
    processor: XQueryProcessor,
    budget_seconds: float = 10.0,
) -> TableNineRow:
    """Run one query in all four Table IX configurations.

    The *stacked* configuration evaluates the unrewritten plan with the
    algebra interpreter, *join graph* runs the isolated SQL join graph on
    the relational back-end (falling back to the isolated plan when the
    query could not be cast into a single SFW block — documented for Q2),
    and the two pureXML configurations run the navigational baseline over
    the whole-document and the segmented store respectively.
    """
    stacked = _time_call(
        lambda: processor.execute_stacked(query.xquery, timeout_seconds=budget_seconds),
        budget_seconds,
    )

    def join_graph_call():
        try:
            return processor.execute_join_graph(query.xquery, timeout_seconds=budget_seconds)
        except JoinGraphError:
            return processor.execute_isolated_interpreted(
                query.xquery, timeout_seconds=budget_seconds
            )

    join_graph = _time_call(join_graph_call, budget_seconds)

    whole_engine = PureXMLEngine(dataset.whole_store)
    segmented_engine = PureXMLEngine(dataset.segmented_store)
    if query.pattern_index is not None:
        pattern, as_type = query.pattern_index
        whole_engine.create_pattern_index(pattern, as_type)
        segmented_engine.create_pattern_index(pattern, as_type)
    purexml_whole = _time_call(
        lambda: whole_engine.execute(query.xquery, timeout_seconds=budget_seconds),
        budget_seconds,
    )
    purexml_segmented = _time_call(
        lambda: segmented_engine.execute(query.xquery, timeout_seconds=budget_seconds),
        budget_seconds,
    )
    result_nodes = join_graph.node_count if join_graph.node_count is not None else stacked.node_count
    return TableNineRow(
        query=query.name,
        result_nodes=result_nodes,
        stacked=stacked,
        join_graph=join_graph,
        purexml_whole=purexml_whole,
        purexml_segmented=purexml_segmented,
    )

"""The paper's benchmark query set (Q1-Q6) and dataset builders.

Q1 and Q2 come from the running example of Sections II-IV; Q3-Q6 are the
TurboXPath-paper queries of Table VIII.  Q6's non-standard ``return-tuple``
construct (which the paper itself replaces by an SQL/XML ``XMLTABLE``) is
represented here by returning the thesis titles — the selective part of the
query (the ``year < "1994" and author and title`` predicate over
``phdthesis`` entries) is preserved unchanged, only the projection of the
three result columns into a tuple is simplified to a single column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.purexml.storage import XMLColumnStore
from repro.xmldb.encoding import DocumentEncoding, encode_document
from repro.xmldb.generators.dblp import DblpConfig, generate_dblp_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document
from repro.xmldb.infoset import XMLNode


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query plus the metadata the reports need."""

    name: str
    dataset: str           # "xmark" or "dblp"
    xquery: str
    paper_id: str          # the identifier used in the paper / in [13]
    description: str
    pattern_index: Optional[tuple[str, str]] = None  # (pattern, type) for pureXML


#: The query set of the paper's evaluation (Table VIII plus Q1/Q2).
WORKLOAD: tuple[BenchmarkQuery, ...] = (
    BenchmarkQuery(
        name="Q1",
        dataset="xmark",
        xquery='doc("auction.xml")/descendant::open_auction[bidder]',
        paper_id="Q1",
        description="open auctions that already have a bidder",
    ),
    BenchmarkQuery(
        name="Q2",
        dataset="xmark",
        xquery=(
            'let $a := doc("auction.xml") '
            "for $ca in $a//closed_auction[price > 500], "
            "$i in $a//item, $c in $a//category "
            "where $ca/itemref/@item = $i/@id "
            "and $i/incategory/@category = $c/@id "
            "return $c/name"
        ),
        paper_id="Q2",
        description="categories of items sold above 500",
        pattern_index=("//closed_auction/price", "DOUBLE"),
    ),
    BenchmarkQuery(
        name="Q3",
        dataset="xmark",
        xquery='/site/people/person[@id = "person0"]/name/text()',
        paper_id="XMark 9a",
        description="name of person0 (highly selective value lookup)",
        pattern_index=("/site/people/person/@id", "VARCHAR"),
    ),
    BenchmarkQuery(
        name="Q4",
        dataset="xmark",
        xquery="//closed_auction/price/text()",
        paper_id="XMark 9c",
        description="all closed auction prices (raw traversal)",
    ),
    BenchmarkQuery(
        name="Q5",
        dataset="dblp",
        xquery='/dblp/*[@key = "conf/vldb2001" and editor and title]/title',
        paper_id="DBLP 8c",
        description="title of the VLDB 2001 proceedings",
        pattern_index=("/dblp/*/@key", "VARCHAR"),
    ),
    BenchmarkQuery(
        name="Q6",
        dataset="dblp",
        xquery='for $thesis in /dblp/phdthesis[year < "1994" and author and title] '
        "return $thesis/title",
        paper_id="DBLP 8g",
        description="early PhD theses (selective tag + value test)",
        pattern_index=("/dblp/phdthesis/year", "VARCHAR"),
    ),
)


def query_by_name(name: str) -> BenchmarkQuery:
    """Look up a workload query by its ``Q<n>`` name."""
    for query in WORKLOAD:
        if query.name == name:
            return query
    raise KeyError(name)


@dataclass
class BenchmarkDataset:
    """One benchmark document in every representation the experiment needs."""

    name: str
    uri: str
    document: XMLNode
    encoding: DocumentEncoding
    whole_store: XMLColumnStore
    segmented_store: XMLColumnStore

    @property
    def node_count(self) -> int:
        return len(self.encoding)


def build_xmark_dataset(scale: float = 0.3, seed: int = 42) -> BenchmarkDataset:
    """Build the XMark-like auction dataset at the given scale."""
    document = generate_xmark_document(XMarkConfig(scale=scale, seed=seed))
    return BenchmarkDataset(
        name="xmark",
        uri="auction.xml",
        document=document,
        encoding=encode_document(document),
        whole_store=XMLColumnStore.whole(document),
        segmented_store=XMLColumnStore.from_segments(document, segment_depth=3),
    )


def build_dblp_dataset(scale: float = 0.3, seed: int = 7) -> BenchmarkDataset:
    """Build the DBLP-like bibliography dataset at the given scale."""
    document = generate_dblp_document(DblpConfig(scale=scale, seed=seed))
    return BenchmarkDataset(
        name="dblp",
        uri="dblp.xml",
        document=document,
        encoding=encode_document(document),
        whole_store=XMLColumnStore.whole(document),
        segmented_store=XMLColumnStore.from_segments(document, segment_depth=2),
    )

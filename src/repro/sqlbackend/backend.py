""":class:`SQLiteBackend` — the off-the-shelf RDBMS behind ``configuration="sql"``.

The backend owns one SQLite connection (in-memory by default, file-backed
on request), mirrors a :class:`~repro.xmldb.encoding.DocumentEncoding`
into the Fig. 2 ``doc`` table, and executes the two SQL renderings of
:mod:`repro.core.sqlgen`:

* the isolated join-graph SFW block (Fig. 8/9) — the paper's headline:
  one indexed n-fold self-join the RDBMS join workhorse handles well;
* the stacked ``WITH``-chain — the unrewritten plan, one CTE per operator,
  whose ``DISTINCT``/``RANK() OVER`` fences are exactly what Section IV
  blames for the stacked configuration's poor behaviour.

Mirroring is *incremental*: the encoding is append-only (``pre`` ranks
never change), so :meth:`SQLiteBackend.sync` bulk-loads only the rows
beyond the current high-water mark.  A session that registers documents
over time re-uses one backend and pays load cost once per new document.

External-variable bindings arrive as plain mappings and are forwarded to
SQLite's native named-parameter binding (the ``:x`` markers the SQL
renderers emit for :class:`~repro.core.joingraph.ParameterTerm` /
:class:`~repro.algebra.predicates.Parameter` slots) — prepared queries
re-execute without any SQL re-rendering.
"""

from __future__ import annotations

import os
import re
import sqlite3
import time
import weakref
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.errors import CatalogError, QueryTimeoutError
from repro.sqlbackend.schema import bootstrap_schema, index_names, insert_statement
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding

#: VM instructions between progress-handler ticks while a timeout is armed.
_PROGRESS_INTERVAL = 4000


@dataclass
class SQLResult:
    """Rows produced by one SQL execution, plus the statement that ran."""

    sql: str
    columns: tuple[str, ...]
    rows: list[tuple]
    elapsed_seconds: float
    bindings: dict[str, object] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return len(self.rows)


class SQLiteBackend:
    """A SQLite mirror of one document encoding, ready to execute plans.

    Example:

    >>> from repro.xmldb.encoding import encode_document
    >>> from repro.xmldb.parser import parse_xml
    >>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="t.xml"))
    >>> backend = SQLiteBackend()
    >>> backend.sync(encoding)
    6
    >>> backend.execute("SELECT pre FROM doc WHERE name = :n", {"n": "b"}).rows
    [(2,), (4,)]
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"] = ":memory:",
        table_name: str = "doc",
        with_indexes: bool = True,
    ):
        self.table_name = table_name
        self.path = str(path)
        self.connection = sqlite3.connect(self.path)
        self.index_names = bootstrap_schema(
            self.connection, table_name, with_indexes=with_indexes
        )
        self._insert_sql = insert_statement(table_name, DOC_COLUMNS)
        #: High-water mark of mirrored rows (== ``pre`` of the next row).
        self.loaded_rows = int(
            self.connection.execute(f"SELECT COUNT(*) FROM {table_name}").fetchone()[0]
        )
        self._source: Optional["weakref.ref[DocumentEncoding]"] = None

    @classmethod
    def from_encoding(cls, encoding: DocumentEncoding, **kwargs) -> "SQLiteBackend":
        """Create a backend and load ``encoding`` in one step."""
        backend = cls(**kwargs)
        backend.sync(encoding)
        return backend

    # -- loading -----------------------------------------------------------------

    def sync(self, encoding: DocumentEncoding) -> int:
        """Mirror ``encoding`` into the ``doc`` table; returns rows appended.

        Incremental: only rows past the high-water mark are loaded (the
        encoding is append-only, so previously mirrored rows are final).
        One backend mirrors one encoding object for its lifetime; syncing a
        different encoding raises :class:`~repro.errors.CatalogError`
        instead of silently interleaving two catalogs.  A backend opened
        over a pre-populated (file-backed) database verifies once that the
        existing rows are a prefix of ``encoding`` before adopting it.
        """
        if self._source is not None and self._source() is not encoding:
            raise CatalogError(
                "this SQLiteBackend already mirrors a different DocumentEncoding"
            )
        total = len(encoding)
        if total < self.loaded_rows:
            raise CatalogError(
                f"encoding has {total} rows but {self.loaded_rows} are already "
                "mirrored; encodings are append-only"
            )
        if self._source is None and self.loaded_rows:
            self._verify_mirrored_prefix(encoding)
        self._source = weakref.ref(encoding)
        if total == self.loaded_rows:
            return 0
        fresh = encoding.records[self.loaded_rows :]
        self.connection.executemany(
            self._insert_sql, (record.as_tuple() for record in fresh)
        )
        self.connection.commit()
        self.loaded_rows = total
        # Refresh planner statistics so access-path choices see the new data.
        self.connection.execute("PRAGMA analysis_limit = 1000")
        self.connection.execute("ANALYZE")
        return len(fresh)

    def _verify_mirrored_prefix(self, encoding: DocumentEncoding) -> None:
        """Check that already-mirrored rows equal ``encoding``'s prefix.

        Runs once when a backend adopts an encoding over a database that
        already holds rows (a reopened file-backed mirror): a persisted
        database loaded from a *different* catalog must fail loudly here,
        not return wrong query results later.  Streaming comparison,
        O(mirrored rows), paid a single time per process.
        """
        cursor = self.connection.execute(
            f"SELECT * FROM {self.table_name} ORDER BY pre"
        )
        for record, mirrored in zip(encoding.records, cursor):
            expected = record.as_tuple()
            # SQLite persists NaN as NULL; normalize before comparing.
            data = expected[-1]
            if isinstance(data, float) and data != data:
                expected = expected[:-1] + (None,)
            if expected != tuple(mirrored):
                raise CatalogError(
                    f"the mirrored database diverges from the encoding at "
                    f"pre = {mirrored[0]}: it was loaded from a different catalog"
                )

    def row_count(self) -> int:
        """Rows currently in the ``doc`` table (sanity/monitoring hook)."""
        cursor = self.connection.execute(f"SELECT COUNT(*) FROM {self.table_name}")
        return int(cursor.fetchone()[0])

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        bindings: Optional[Mapping[str, object]] = None,
        timeout_seconds: Optional[float] = None,
    ) -> SQLResult:
        """Run one SQL statement; named ``:x`` markers bind from ``bindings``.

        ``timeout_seconds`` arms SQLite's progress handler as an execution
        budget; overruns raise :class:`~repro.errors.QueryTimeoutError`
        (the paper's DNF), like every other execution configuration.
        """
        values = dict(bindings or {})
        started = time.perf_counter()
        if timeout_seconds is not None:
            deadline = started + timeout_seconds

            def _over_budget() -> int:
                return 1 if time.perf_counter() > deadline else 0

            self.connection.set_progress_handler(_over_budget, _PROGRESS_INTERVAL)
        try:
            cursor = self.connection.execute(sql, values)
            rows = cursor.fetchall()
        except sqlite3.OperationalError as error:
            if timeout_seconds is not None and "interrupt" in str(error).lower():
                raise QueryTimeoutError(
                    timeout_seconds, time.perf_counter() - started
                ) from None
            raise
        finally:
            if timeout_seconds is not None:
                self.connection.set_progress_handler(None, 0)
        columns = tuple(item[0] for item in cursor.description or ())
        return SQLResult(
            sql=sql,
            columns=columns,
            rows=rows,
            elapsed_seconds=time.perf_counter() - started,
            bindings=values,
        )

    def query_plan(
        self, sql: str, bindings: Optional[Mapping[str, object]] = None
    ) -> list[str]:
        """SQLite's EXPLAIN QUERY PLAN detail lines for ``sql``.

        Unsupplied ``:name`` markers are bound to NULL for the explain —
        plan *introspection* needs no real values, so prepared SQL can be
        explained without inventing bindings (extra keys are harmless).
        """
        values = {name: None for name in re.findall(r":([A-Za-z_]\w*)", sql)}
        values.update(bindings or {})
        cursor = self.connection.execute("EXPLAIN QUERY PLAN " + sql, values)
        return [row[-1] for row in cursor.fetchall()]

    def indexes(self) -> list[str]:
        """Names of the indexes currently defined on the ``doc`` table."""
        return index_names(self.connection, self.table_name)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

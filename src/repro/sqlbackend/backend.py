""":class:`SQLiteBackend` — the off-the-shelf RDBMS behind ``configuration="sql"``.

The backend mirrors a :class:`~repro.xmldb.encoding.DocumentEncoding`
into the Fig. 2 ``doc`` table (in-memory by default, file-backed on
request) and executes the two SQL renderings of :mod:`repro.core.sqlgen`:

* the isolated join-graph SFW block (Fig. 8/9) — the paper's headline:
  one indexed n-fold self-join the RDBMS join workhorse handles well;
* the stacked ``WITH``-chain — the unrewritten plan, one CTE per operator,
  whose ``DISTINCT``/``RANK() OVER`` fences are exactly what Section IV
  blames for the stacked configuration's poor behaviour.

Mirroring is *incremental*: the encoding is append-only (``pre`` ranks
never change), so :meth:`SQLiteBackend.sync` bulk-loads only the rows
beyond the current high-water mark.  A session that registers documents
over time re-uses one backend and pays load cost once per new document.

External-variable bindings arrive as plain mappings and are forwarded to
SQLite's native named-parameter binding (the ``:x`` markers the SQL
renderers emit for :class:`~repro.core.joingraph.ParameterTerm` /
:class:`~repro.algebra.predicates.Parameter` slots) — prepared queries
re-execute without any SQL re-rendering.

Concurrency
-----------

One backend serves many threads.  Instead of funnelling every statement
through one connection (SQLite would serialize them on its internal
mutex), the backend owns a :class:`ConnectionPool` of per-thread *read*
connections:

* **file-backed** mirrors hand each thread its own connection to the same
  database file — SQLite allows any number of concurrent readers;
* **in-memory** mirrors hand each thread a private *clone* of the primary
  database (via the SQLite online-backup API — effectively a memcpy),
  because a ``:memory:`` database is invisible to other connections.
  Clones carry a generation tag; :meth:`sync` bumps the generation and
  stale clones are re-cloned on their next checkout.

All mutation — :meth:`sync`, non-``SELECT`` statements through
:meth:`execute` — is serialized behind one write lock and runs on the
primary connection; reads never take that lock (except the brief clone
refresh after a catalog change).  SQLite releases the GIL while a
statement executes, so pooled reads scale with cores.
"""

from __future__ import annotations

import os
import re
import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.errors import (
    BackendClosedError,
    BackendExecutionError,
    CatalogError,
    MirrorIntegrityError,
    QueryTimeoutError,
    TransientBackendError,
)
from repro.sqlbackend.schema import bootstrap_schema, index_names, insert_statement
from repro.testing.faults import fire as _fire_fault
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding

#: VM instructions between progress-handler ticks while a timeout is armed.
_PROGRESS_INTERVAL = 4000

#: Rows per ``fetchmany`` batch while draining a cursor.  Large enough that
#: the per-batch transpose amortises, small enough that the progress handler
#: (and thus the timeout) keeps firing between batches.
_FETCH_BATCH = 4096

#: Statements that only read.  Anything else routes to the primary
#: connection under the write lock (PRAGMA included: many pragmas write).
_READ_STATEMENTS = ("SELECT", "EXPLAIN", "VALUES")

#: SQLite allows CTE-prefixed DML (``WITH ... INSERT/UPDATE/DELETE``), so a
#: leading WITH alone does not make a statement a read.  The scan is
#: deliberately conservative: a false *write* classification only costs the
#: statement its read concurrency (it runs serialized on the primary,
#: still correct); a false read would lose the write in a thread-private
#: clone.
_WRITE_KEYWORD = re.compile(
    r"\b(INSERT|UPDATE|DELETE|REPLACE|CREATE|DROP|ALTER|ATTACH|DETACH|VACUUM|REINDEX)\b",
    re.IGNORECASE,
)


def _is_read_statement(sql: str) -> bool:
    """True when ``sql`` is a pure query (safe to run on a pooled reader)."""
    text = re.sub(r"^(\s|--[^\n]*\n|/\*.*?\*/)+", "", sql, flags=re.DOTALL)
    first = text[:10].upper()
    if any(first.startswith(keyword) for keyword in _READ_STATEMENTS):
        return True
    return first.startswith("WITH") and not _WRITE_KEYWORD.search(text)


#: Driver-message classes that clear on retry: another writer holds a lock,
#: the OS hiccuped, someone interrupted the VM.  Substring matches against
#: the lowercased message (SQLite appends detail after these prefixes, e.g.
#: ``database table is locked: doc``).
_TRANSIENT_MESSAGES = (
    "database is locked",
    "database table is locked",
    "database is busy",
    "disk i/o error",
)

#: Driver-message classes that mean the mirror itself can no longer be
#: trusted — the quarantine-and-rebuild path recovers from these.
_INTEGRITY_MESSAGES = (
    "database disk image is malformed",
    "file is not a database",
    "malformed database schema",
)


def classify_driver_error(error: BaseException) -> Exception:
    """Translate a driver exception into the repro error taxonomy.

    The boundary rule: no raw :mod:`sqlite3` exception escapes the backend.
    Transient subcases (locked/busy/disk I/O/interrupted) become
    :class:`~repro.errors.TransientBackendError` — the only class retry
    policies act on; integrity subcases become
    :class:`~repro.errors.MirrorIntegrityError` (triggering the rebuild
    path); everything else is a permanent
    :class:`~repro.errors.BackendExecutionError`.

    Classification keys on SQLite's fixed message prefixes, never on loose
    substrings: a genuine SQL error that merely *mentions* ``interrupt``
    (``no such table: interrupt_log``) stays permanent.  ``interrupted``
    must be the entire message — that is exactly what ``sqlite3_interrupt``
    produces, and anything longer is a different error that happens to
    contain the word.
    """
    message = str(error).lower()
    if message == "interrupted":
        return TransientBackendError(
            "the statement was interrupted mid-execution", cause=error
        )
    for needle in _INTEGRITY_MESSAGES:
        if needle in message:
            return MirrorIntegrityError(str(error), cause=error)
    for needle in _TRANSIENT_MESSAGES:
        if needle in message:
            return TransientBackendError(str(error), cause=error)
    return BackendExecutionError(str(error), cause=error)


@dataclass
class SQLResult:
    """Rows produced by one SQL execution, plus the statement that ran."""

    sql: str
    columns: tuple[str, ...]
    rows: list[tuple]
    elapsed_seconds: float
    bindings: dict[str, object] = field(default_factory=dict)
    #: Column-major view of ``rows`` (one list per column), built while the
    #: cursor drains so the decode step never re-transposes the result.
    #: ``None`` only for hand-built results that skipped the backend.
    column_data: Optional[list[list]] = None

    @property
    def row_count(self) -> int:
        return len(self.rows)


class ConnectionPool:
    """Per-thread SQLite read connections over one primary database.

    The pool owns the *primary* connection (the only one that writes) and
    lazily creates one reader per thread:

    * for a file-backed database, a fresh connection to the same path;
    * for ``:memory:``, a clone of the primary made with the online-backup
      API (``Connection.backup`` — available on every supported Python).

    A generation counter invalidates readers: :meth:`mark_changed` (called
    by the backend after every committed write) bumps it, and a stale
    reader is refreshed on its next :meth:`acquire` — file readers just
    adopt the new generation (the file already has the data), memory
    readers are re-cloned from the primary under the write lock.

    All connections are created with ``check_same_thread=False``; the pool's
    discipline — one reader per thread, writes only on the primary under
    :attr:`write_lock` — is what makes that safe.
    """

    def __init__(self, path: str):
        self.path = path
        self.in_memory = path == ":memory:"
        #: Serializes every mutation of the primary (sync, writes, clones).
        self.write_lock = threading.RLock()
        self.primary = sqlite3.connect(path, check_same_thread=False)
        self._generation = 0
        #: Bumped when the primary is *replaced* (mirror rebuild): stale
        #: readers cannot be refreshed in place — for a file-backed pool the
        #: old connections still hold the quarantined file's inode — so an
        #: epoch change makes every thread discard its reader and connect
        #: anew on the next acquire.
        self._epoch = 0
        self._local = threading.local()
        #: thread ident -> (weakref to the owning thread, its reader).
        #: Lets close() reach every reader, and lets reader creation prune
        #: connections whose threads have died — a long-lived session
        #: serving short-lived threads must not accumulate clones forever.
        self._readers: dict[int, tuple["weakref.ref", sqlite3.Connection]] = {}
        self._registry_lock = threading.Lock()
        self.closed = False

    # -- lifecycle ---------------------------------------------------------------

    def mark_changed(self) -> None:
        """Record a committed write; existing readers are now stale."""
        self._generation += 1

    def replace_primary(self, connection: sqlite3.Connection) -> None:
        """Swap in a new primary (mirror rebuild); every reader is retired.

        Called with a fully initialized replacement database under
        :attr:`write_lock`.  The epoch bump makes every pooled reader —
        in-memory clone or file connection to a quarantined inode — rebuild
        from scratch on its owning thread's next :meth:`acquire`; the old
        primary is closed here, old readers close lazily as their threads
        return.
        """
        with self.write_lock:
            retired = self.primary
            self.primary = connection
            self._generation += 1
            self._epoch += 1
        try:
            retired.close()
        except sqlite3.Error:  # pragma: no cover - close() best effort
            pass

    def close(self) -> None:
        """Close the primary and every pooled reader.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        with self._registry_lock:
            connections = [reader for _owner, reader in self._readers.values()]
            self._readers.clear()
        connections.append(self.primary)
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close() best effort
                pass

    # -- checkout ----------------------------------------------------------------

    def acquire(self) -> sqlite3.Connection:
        """The calling thread's read connection, refreshed if stale.

        Failure-safe: if refresh or creation fails mid-acquire (a clone
        fault, a dying filesystem), the half-initialized connection is
        closed and dropped from both the thread-local slot and the registry
        — never cached, so the next acquire starts clean.  Driver errors
        cross the same classification boundary as execution errors: no raw
        :mod:`sqlite3` exception escapes the pool.
        """
        try:
            return self._acquire()
        except sqlite3.DatabaseError as error:
            raise classify_driver_error(error) from error

    def _acquire(self) -> sqlite3.Connection:
        _fire_fault("pool.acquire")
        if self.closed:
            raise BackendClosedError("this SQLiteBackend has been closed")
        generation = self._generation
        epoch = self._epoch
        connection = getattr(self._local, "connection", None)
        if connection is not None and getattr(self._local, "epoch", None) != epoch:
            # The primary was replaced (mirror rebuild): this reader may
            # point at a quarantined database — discard it outright.
            self._discard_local_reader()
            connection = None
        if connection is not None and self._local.generation == generation:
            return connection
        if connection is None:
            connection = self._new_reader()
            self._local.connection = connection
        elif self.in_memory:
            # Stale clone: re-copy the primary (file readers see the file).
            try:
                _fire_fault("mirror.clone")
                with self.write_lock:
                    self.primary.backup(connection)
            except BaseException:
                self._discard_local_reader()
                raise
        self._local.generation = generation
        self._local.epoch = epoch
        return connection

    def _discard_local_reader(self) -> None:
        """Close + forget the calling thread's reader (refresh failed/stale)."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            return
        self._local.connection = None
        with self._registry_lock:
            registered = self._readers.get(threading.get_ident())
            if registered is not None and registered[1] is connection:
                del self._readers[threading.get_ident()]
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close() best effort
            pass

    def _new_reader(self) -> sqlite3.Connection:
        if self.in_memory:
            connection = sqlite3.connect(":memory:", check_same_thread=False)
            try:
                _fire_fault("mirror.clone")
                with self.write_lock:
                    self.primary.backup(connection)
            except BaseException:
                # Clone failed mid-setup: the half-initialized connection
                # must not leak (it was never registered).
                connection.close()
                raise
        else:
            connection = sqlite3.connect(self.path, check_same_thread=False)
        stale: list[sqlite3.Connection] = []
        with self._registry_lock:
            if self.closed:  # closed while we were connecting
                connection.close()
                raise BackendClosedError("this SQLiteBackend has been closed")
            # Reader creation is rare — piggyback the dead-thread sweep on
            # it so clones never outlive their threads by more than one
            # pool-growth event.
            for ident, (owner, reader) in list(self._readers.items()):
                thread = owner()
                if thread is None or not thread.is_alive():
                    del self._readers[ident]
                    stale.append(reader)
            # A reused thread ident means the previous owner is dead but
            # was not swept above (weakref still alive); close it too
            # rather than leaking it on overwrite.
            previous = self._readers.get(threading.get_ident())
            if previous is not None:
                stale.append(previous[1])
            self._readers[threading.get_ident()] = (
                weakref.ref(threading.current_thread()),
                connection,
            )
        for reader in stale:
            try:
                reader.close()
            except sqlite3.Error:  # pragma: no cover - close() best effort
                pass
        return connection

    @property
    def size(self) -> int:
        """Connections currently open (primary + per-thread readers)."""
        with self._registry_lock:
            return 1 + len(self._readers)


class SQLiteBackend:
    """A SQLite mirror of one document encoding, ready to execute plans.

    Example:

    >>> from repro.xmldb.encoding import encode_document
    >>> from repro.xmldb.parser import parse_xml
    >>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="t.xml"))
    >>> backend = SQLiteBackend()
    >>> backend.sync(encoding)
    6
    >>> backend.execute("SELECT pre FROM doc WHERE name = :n", {"n": "b"}).rows
    [(2,), (4,)]
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"] = ":memory:",
        table_name: str = "doc",
        with_indexes: bool = True,
    ):
        self.table_name = table_name
        self.path = str(path)
        self.with_indexes = with_indexes
        #: Times the quarantine-and-rebuild path reconstructed this mirror.
        self.rebuilds = 0
        self.pool = ConnectionPool(self.path)
        if not self.pool.in_memory:
            # Readers and the sync writer coexist under WAL; without it a
            # pooled reader could starve a registration for the busy timeout.
            try:
                self.pool.primary.execute("PRAGMA journal_mode=WAL")
            except sqlite3.Error:  # pragma: no cover - exotic filesystems
                pass
        self.index_names = bootstrap_schema(
            self.connection, table_name, with_indexes=with_indexes
        )
        self._insert_sql = insert_statement(table_name, DOC_COLUMNS)
        #: High-water mark of mirrored rows (== ``pre`` of the next row).
        self.loaded_rows = int(
            self.connection.execute(f"SELECT COUNT(*) FROM {table_name}").fetchone()[0]
        )
        self._source: Optional["weakref.ref[DocumentEncoding]"] = None
        self.pool.mark_changed()  # schema bootstrap happened on the primary

    @property
    def connection(self) -> sqlite3.Connection:
        """The primary (write) connection — reads go through :attr:`pool`."""
        if self.pool.closed:
            raise BackendClosedError("this SQLiteBackend has been closed")
        return self.pool.primary

    @property
    def closed(self) -> bool:
        return self.pool.closed

    @classmethod
    def from_encoding(cls, encoding: DocumentEncoding, **kwargs) -> "SQLiteBackend":
        """Create a backend and load ``encoding`` in one step."""
        backend = cls(**kwargs)
        backend.sync(encoding)
        return backend

    # -- loading -----------------------------------------------------------------

    def sync(self, encoding: DocumentEncoding) -> int:
        """Mirror ``encoding`` into the ``doc`` table; returns rows appended.

        Incremental: only rows past the high-water mark are loaded (the
        encoding is append-only, so previously mirrored rows are final).
        One backend mirrors one encoding object for its lifetime; syncing a
        different encoding raises :class:`~repro.errors.CatalogError`
        instead of silently interleaving two catalogs.  A backend opened
        over a pre-populated (file-backed) database verifies once that the
        existing rows are a prefix of ``encoding`` before adopting it.

        Thread-safe: the whole load is serialized behind the pool's write
        lock, and concurrent no-op syncs (the common per-execution case)
        return without blocking readers.
        """
        with self.pool.write_lock:
            if self.pool.closed:
                raise BackendClosedError("this SQLiteBackend has been closed")
            try:
                # Fires on every sync — including the per-execution no-op
                # path — so chaos runs can fault any query's sync stage.
                _fire_fault("backend.sync")
            except sqlite3.DatabaseError as error:
                raise classify_driver_error(error) from error
            if self._source is not None and self._source() is not encoding:
                raise CatalogError(
                    "this SQLiteBackend already mirrors a different DocumentEncoding"
                )
            total = len(encoding)
            if total < self.loaded_rows:
                raise CatalogError(
                    f"encoding has {total} rows but {self.loaded_rows} are already "
                    "mirrored; encodings are append-only"
                )
            if self._source is None and self.loaded_rows:
                self._verify_mirrored_prefix(encoding)
            self._source = weakref.ref(encoding)
            if total == self.loaded_rows:
                return 0
            # Slice up to the observed total, not the open end: another
            # document may be (atomically) appended while we load, and its
            # rows must wait for the next sync or they would be re-inserted.
            fresh = encoding.records[self.loaded_rows : total]
            try:
                self.connection.executemany(
                    self._insert_sql, (record.as_tuple() for record in fresh)
                )
                self.connection.commit()
            except sqlite3.DatabaseError as error:
                # A failed bulk load may have left a partial tail behind an
                # aborted transaction; roll it back so the high-water mark
                # stays truthful, then surface the classified error.
                try:
                    self.connection.rollback()
                except sqlite3.Error:  # pragma: no cover - rollback best effort
                    pass
                raise classify_driver_error(error) from error
            self.loaded_rows = total
            # Refresh planner statistics so access-path choices see the new data.
            self.connection.execute("PRAGMA analysis_limit = 1000")
            self.connection.execute("ANALYZE")
            self.pool.mark_changed()
            return len(fresh)

    def _verify_mirrored_prefix(self, encoding: DocumentEncoding) -> None:
        """Check that already-mirrored rows equal ``encoding``'s prefix.

        Runs once when a backend adopts an encoding over a database that
        already holds rows (a reopened file-backed mirror): a persisted
        database loaded from a *different* catalog must fail loudly here,
        not return wrong query results later.  Streaming comparison,
        O(mirrored rows), paid a single time per process.
        """
        cursor = self.connection.execute(
            f"SELECT * FROM {self.table_name} ORDER BY pre"
        )
        for record, mirrored in zip(encoding.records, cursor):
            expected = record.as_tuple()
            # SQLite persists NaN as NULL; normalize before comparing.
            data = expected[-1]
            if isinstance(data, float) and data != data:
                expected = expected[:-1] + (None,)
            if expected != tuple(mirrored):
                raise CatalogError(
                    f"the mirrored database diverges from the encoding at "
                    f"pre = {mirrored[0]}: it was loaded from a different catalog"
                )

    def row_count(self) -> int:
        """Rows currently in the ``doc`` table (sanity/monitoring hook)."""
        cursor = self.pool.acquire().execute(f"SELECT COUNT(*) FROM {self.table_name}")
        return int(cursor.fetchone()[0])

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        sql: str,
        bindings: Optional[Mapping[str, object]] = None,
        timeout_seconds: Optional[float] = None,
    ) -> SQLResult:
        """Run one SQL statement; named ``:x`` markers bind from ``bindings``.

        Queries (``SELECT``/``WITH``/``EXPLAIN``/``VALUES``) run on the
        calling thread's pooled connection, concurrently with other
        readers; anything else runs on the primary connection behind the
        write lock and invalidates the pool.

        ``timeout_seconds`` arms SQLite's progress handler as an execution
        budget; overruns raise :class:`~repro.errors.QueryTimeoutError`
        (the paper's DNF), like every other execution configuration.  The
        handler is installed on the thread-private connection, so budgets
        on parallel queries never interfere.
        """
        if self.pool.closed:
            raise BackendClosedError(
                "this SQLiteBackend has been closed; create a new backend "
                "(or a new Session) to keep executing"
            )
        if _is_read_statement(sql):
            return self._run(self.pool.acquire(), sql, bindings, timeout_seconds)
        with self.pool.write_lock:
            result = self._run(self.connection, sql, bindings, timeout_seconds)
            self.connection.commit()
            self.pool.mark_changed()
            return result

    def _run(
        self,
        connection: sqlite3.Connection,
        sql: str,
        bindings: Optional[Mapping[str, object]],
        timeout_seconds: Optional[float],
    ) -> SQLResult:
        values = dict(bindings or {})
        started = time.perf_counter()
        #: Set by the progress handler the instant it aborts the statement.
        #: The except-clause keys on this flag, *not* on the error text — an
        #: ordinary OperationalError whose message merely contains the word
        #: "interrupt" (say, ``no such table: interrupt_log``) must surface
        #: as-is, never be misreported as a timeout.
        interrupted = False
        if timeout_seconds is not None:
            deadline = started + timeout_seconds

            def _over_budget() -> int:
                nonlocal interrupted
                if time.perf_counter() > deadline:
                    interrupted = True
                    return 1
                return 0

            connection.set_progress_handler(_over_budget, _PROGRESS_INTERVAL)
        try:
            _fire_fault("backend.execute")
            cursor = connection.execute(sql, values)
            # Drain in fixed-size batches, transposing each batch as it
            # arrives: the decode step consumes whole columns, and per-batch
            # ``zip(*batch)`` builds them without a second full-result pass.
            rows: list[tuple] = []
            column_data: Optional[list[list]] = None
            while True:
                batch = cursor.fetchmany(_FETCH_BATCH)
                if not batch:
                    break
                rows.extend(batch)
                transposed = zip(*batch)
                if column_data is None:
                    column_data = [list(column) for column in transposed]
                else:
                    for accumulated, column in zip(column_data, transposed):
                        accumulated.extend(column)
        except sqlite3.ProgrammingError as error:
            if self.pool.closed:
                raise BackendClosedError(
                    "this SQLiteBackend has been closed"
                ) from None
            raise BackendExecutionError(str(error), cause=error) from error
        except sqlite3.DatabaseError as error:
            if interrupted:
                raise QueryTimeoutError(
                    timeout_seconds, time.perf_counter() - started
                ) from None
            classified = classify_driver_error(error)
            if isinstance(classified, MirrorIntegrityError):
                # Self-healing path: quarantine + rebuild from the canonical
                # encoding; on success the retry layer re-executes against
                # the fresh mirror (reported as transient), on failure the
                # integrity error stands.
                raise self._heal_after_corruption(classified) from error
            raise classified from error
        finally:
            if timeout_seconds is not None:
                try:
                    connection.set_progress_handler(None, 0)
                except sqlite3.ProgrammingError:
                    pass  # closed concurrently; nothing left to disarm
        columns = tuple(item[0] for item in cursor.description or ())
        if column_data is None:
            column_data = [[] for _ in columns]
        return SQLResult(
            sql=sql,
            columns=columns,
            rows=rows,
            elapsed_seconds=time.perf_counter() - started,
            bindings=values,
            column_data=column_data,
        )

    def query_plan(
        self, sql: str, bindings: Optional[Mapping[str, object]] = None
    ) -> list[str]:
        """SQLite's EXPLAIN QUERY PLAN detail lines for ``sql``.

        Unsupplied ``:name`` markers are bound to NULL for the explain —
        plan *introspection* needs no real values, so prepared SQL can be
        explained without inventing bindings (extra keys are harmless).
        """
        values = {name: None for name in re.findall(r":([A-Za-z_]\w*)", sql)}
        values.update(bindings or {})
        cursor = self.pool.acquire().execute("EXPLAIN QUERY PLAN " + sql, values)
        return [row[-1] for row in cursor.fetchall()]

    def indexes(self) -> list[str]:
        """Names of the indexes currently defined on the ``doc`` table."""
        return index_names(self.pool.acquire(), self.table_name)

    # -- integrity & self-healing -------------------------------------------------

    def verify_integrity(self) -> bool:
        """True when the mirror is structurally sound and still faithful.

        Two layers of checking: SQLite's ``PRAGMA integrity_check`` (page
        and index structure) and the append-only prefix verification
        against the canonical encoding (exact row count at the high-water
        mark plus row-by-row comparison) — a mirror that silently lost or
        mutated rows passes the PRAGMA but fails here.  Runs behind the
        write lock; pooled readers are not disturbed.
        """
        with self.pool.write_lock:
            if self.pool.closed:
                raise BackendClosedError("this SQLiteBackend has been closed")
            try:
                report = self.pool.primary.execute(
                    "PRAGMA integrity_check"
                ).fetchall()
                if report != [("ok",)]:
                    return False
                count = self.pool.primary.execute(
                    f"SELECT COUNT(*) FROM {self.table_name}"
                ).fetchone()[0]
            except sqlite3.DatabaseError:
                return False
            if count != self.loaded_rows:
                return False
            encoding = self._source() if self._source is not None else None
            if encoding is None:
                return True  # nothing canonical left to compare against
            try:
                self._verify_mirrored_prefix(encoding)
            except (CatalogError, sqlite3.DatabaseError):
                return False
            return True

    def rebuild_mirror(self) -> int:
        """Quarantine the database and reconstruct it from the encoding.

        The rebuild happens on a *fresh* database — a new ``:memory:``
        connection, or the file path after the corrupt file (and its WAL
        sidecars) is moved aside to ``<path>.quarantined-N`` — because
        issuing DDL inside a malformed image can itself fail; nothing of
        the quarantined state is reused.  The finished replacement swaps in
        as the pool's primary with an epoch bump, so every pooled reader
        re-clones (in-memory) or reconnects (file) on its next acquire.

        Returns the number of rows loaded; raises
        :class:`~repro.errors.CatalogError` when no canonical encoding is
        attached to rebuild from.
        """
        with self.pool.write_lock:
            if self.pool.closed:
                raise BackendClosedError("this SQLiteBackend has been closed")
            encoding = self._source() if self._source is not None else None
            if encoding is None:
                raise CatalogError(
                    "cannot rebuild the mirror: no canonical encoding is attached"
                )
            total = len(encoding)
            fresh = self._fresh_primary()
            try:
                bootstrap_schema(
                    fresh, self.table_name, with_indexes=self.with_indexes
                )
                fresh.executemany(
                    self._insert_sql,
                    (record.as_tuple() for record in encoding.records[:total]),
                )
                fresh.commit()
                fresh.execute("PRAGMA analysis_limit = 1000")
                fresh.execute("ANALYZE")
            except BaseException:
                fresh.close()
                raise
            self.pool.replace_primary(fresh)
            self.loaded_rows = total
            self.rebuilds += 1
            return total

    def heal(self) -> bool:
        """Verify the mirror, rebuilding it when unhealthy; True if rebuilt."""
        with self.pool.write_lock:
            if self.verify_integrity():
                return False
            self.rebuild_mirror()
            return True

    def _heal_after_corruption(self, error: MirrorIntegrityError) -> Exception:
        """Attempt the rebuild; decide which error the caller raises.

        The statement that observed the corruption is lost either way.  A
        successful rebuild downgrades the failure to
        :class:`~repro.errors.TransientBackendError` (retry hits a healthy
        mirror); an impossible rebuild leaves the integrity error standing.
        """
        try:
            self.rebuild_mirror()
        except (CatalogError, sqlite3.Error):
            return error
        return TransientBackendError(
            f"the mirror was corrupted ({error}) and has been rebuilt; retry",
            cause=error,
        )

    def _fresh_primary(self) -> sqlite3.Connection:
        """A brand-new empty database at this backend's location.

        File-backed mirrors quarantine the existing file first (main file
        plus WAL sidecars, which belong to the old inode and must not be
        replayed into the replacement).
        """
        if self.pool.in_memory:
            return sqlite3.connect(":memory:", check_same_thread=False)
        quarantine = f"{self.path}.quarantined-{self.rebuilds}"
        for suffix in ("", "-wal", "-shm"):
            try:
                os.replace(self.path + suffix, quarantine + suffix)
            except OSError:
                pass  # that piece is already gone; a fresh one appears below
        connection = sqlite3.connect(self.path, check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
        except sqlite3.Error:  # pragma: no cover - exotic filesystems
            pass
        return connection

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the primary connection and every pooled reader.

        Idempotent: closing twice (or via nested ``with`` blocks) is a
        no-op.  Any later :meth:`execute`/:meth:`sync` raises
        :class:`~repro.errors.BackendClosedError`.
        """
        self.pool.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""SQL execution backend: run the isolated join graph on a real RDBMS.

The paper's whole argument (Sections III-IV) is that join graph isolation
turns a loop-lifted XQuery plan into a single ``SELECT DISTINCT … FROM …
WHERE …`` block that an off-the-shelf relational database executes well.
The rest of the repository *renders* that SQL (:mod:`repro.core.sqlgen`);
this package closes the loop by actually executing it — on SQLite, the
RDBMS that ships with CPython:

* :mod:`repro.sqlbackend.schema` — DDL for the Fig. 2
  ``pre|size|level|kind|name|value|data`` table, ``pre`` clustering via
  ``INTEGER PRIMARY KEY``, and the paper's recommended access-path indexes
  (Table VI shapes, e.g. ``(name, kind, level, pre)``);
* :mod:`repro.sqlbackend.backend` — :class:`SQLiteBackend`: bulk +
  incremental loading of a :class:`~repro.xmldb.encoding.DocumentEncoding`,
  execution of both the isolated SFW block and the stacked ``WITH``-chain
  with named-parameter binding (``:x``) and timeout budgets;
* :mod:`repro.sqlbackend.decode` — reassembly of result rows into pre-rank
  item sequences (the input of :mod:`repro.xmldb.serializer`).

`XQueryProcessor.execute_sql` / ``configuration="sql"`` and
``Session`` wire this in as the fourth engine configuration next to
stacked, isolated-interpreted, and the in-tree relational back-end.
"""

from repro.sqlbackend.backend import SQLiteBackend, SQLResult
from repro.sqlbackend.decode import ordered_items, sequence_items
from repro.sqlbackend.schema import (
    ACCESS_PATH_INDEXES,
    bootstrap_schema,
    create_access_path_indexes,
    create_doc_table,
)

__all__ = [
    "SQLiteBackend",
    "SQLResult",
    "ACCESS_PATH_INDEXES",
    "bootstrap_schema",
    "create_access_path_indexes",
    "create_doc_table",
    "ordered_items",
    "sequence_items",
]

"""Result reassembly: SQL result rows → pre-rank item sequences.

Both SQL renderings deliver tables whose ``item`` column carries ``pre``
ranks (ready for :mod:`repro.xmldb.serializer`); what differs is how much
of the sequence semantics the SQL already enforced:

* the isolated join-graph SFW block (Fig. 8/9) ships ``DISTINCT`` and
  ``ORDER BY`` to the RDBMS — :func:`ordered_items` just projects the
  ``item`` column in row order, mirroring what the in-tree relational
  engine's SORT/RETURN tail produces;
* the stacked ``WITH``-chain (and the algebra interpreter evaluating the
  same plan) returns raw iteration tables with ``iter``/``pos``/``item``
  bookkeeping — :func:`sequence_items` re-derives the XQuery sequence:
  order by (``pos``, ``item``), then drop duplicate items keeping the
  first occurrence.

:func:`sequence_items` is *the* definition of that decode step —
``XQueryProcessor`` delegates to it for every interpreted configuration,
so the SQL backend and the interpreters cannot drift apart.
"""

from __future__ import annotations

from typing import Sequence


def _sortable(value: object) -> tuple:
    """A total order over the mixed NULL/number/string values SQL returns."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


def sequence_items(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    distinct: bool = True,
) -> list:
    """Decode a raw result table into the pre-rank item sequence.

    Rows are ordered by (``pos``, ``item``) when a ``pos`` column is
    present (the compiler's sequence-position bookkeeping), then duplicate
    ``item`` values are dropped keeping first occurrences.

    ``distinct=False`` keeps duplicates: the item column of a *value*
    result (an aggregate or literal in the FLWOR return clause) carries one
    value per iteration, and two iterations may legitimately produce the
    same value — dedup is only the node-sequence discipline.
    """
    item_index = list(columns).index("item")
    pos_index = list(columns).index("pos") if "pos" in columns else None
    if pos_index is not None:
        rows = sorted(
            rows,
            key=lambda row: (_sortable(row[pos_index]), _sortable(row[item_index])),
        )
    if not distinct:
        return [row[item_index] for row in rows if row[item_index] is not None]
    seen: set[object] = set()
    items: list = []
    for row in rows:
        value = row[item_index]
        if value in seen:
            continue
        seen.add(value)
        items.append(value)
    return items


def ordered_items(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    distinct: bool = True,
) -> list:
    """Project the ``item`` column of an already ordered/distinct result.

    The join-graph SFW block made the RDBMS enforce ``DISTINCT`` (over the
    full select list) and ``ORDER BY``; the decode step projects the item
    column in row order and keeps each item's *first* occurrence.  The
    keep-first pass matters for FLWOR nests whose select list carries extra
    ordering columns (value joins bind the same node under several outer
    iterations): SQL's DISTINCT dedupes full rows, the XQuery sequence
    dedupes items.  ``NULL`` items are dropped — a ``pre`` rank is never
    NULL; aggregate tails use NULL for "this iteration contributes no item"
    (``fn:avg`` over an empty sequence).
    """
    item_index = list(columns).index("item")
    return first_occurrence_items(
        (row[item_index] for row in rows), distinct=distinct
    )


def first_occurrence_items(values, distinct: bool = True) -> list:
    """Keep the first occurrence of each non-NULL item, preserving order.

    Shared by :func:`ordered_items` (the RDBMS path) and the interpreted
    join-graph decode in :mod:`repro.core.stages`, so the two tails cannot
    drift apart.  ``distinct=False`` keeps every non-NULL value in row
    order — the discipline for *value* results, whose per-iteration
    aggregate values may legitimately repeat.
    """
    if not distinct:
        return [value for value in values if value is not None]
    seen: set[object] = set()
    items: list = []
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        items.append(value)
    return items

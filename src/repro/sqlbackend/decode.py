"""Result reassembly: SQL result rows → pre-rank item sequences.

Both SQL renderings deliver tables whose ``item`` column carries ``pre``
ranks (ready for :mod:`repro.xmldb.serializer`); what differs is how much
of the sequence semantics the SQL already enforced:

* the isolated join-graph SFW block (Fig. 8/9) ships ``DISTINCT`` and
  ``ORDER BY`` to the RDBMS — :func:`ordered_items` just projects the
  ``item`` column in row order, mirroring what the in-tree relational
  engine's SORT/RETURN tail produces;
* the stacked ``WITH``-chain (and the algebra interpreter evaluating the
  same plan) returns raw iteration tables with ``iter``/``pos``/``item``
  bookkeeping — :func:`sequence_items` re-derives the XQuery sequence:
  order by (``pos``, ``item``), then drop duplicate items keeping the
  first occurrence.

:func:`sequence_items` is *the* definition of that decode step —
``XQueryProcessor`` delegates to it for every interpreted configuration,
so the SQL backend and the interpreters cannot drift apart.
"""

from __future__ import annotations

from typing import Optional, Sequence


def _sortable(value: object) -> tuple:
    """A total order over the mixed NULL/number/string values SQL returns."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


def _sort_keys(values: list) -> list:
    """Per-value sort keys for one column, with the type dispatch hoisted.

    When every value in the column is a plain number — the common case:
    ``pos`` counters and ``pre``-rank items are always ints — the values
    themselves already carry :func:`_sortable`'s order, so no per-value
    tuple is built at all.  One mixed/NULL/string value falls the whole
    column back to explicit ``(rank, value)`` tuples; keys from different
    columns never meet in a comparison, so the two representations may
    coexist across columns.
    """
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return [_sortable(value) for value in values]
    return values


def _column_values(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    column_data: Optional[Sequence[Sequence[object]]],
    name: str,
) -> list:
    index = list(columns).index(name)
    if column_data is not None:
        return list(column_data[index])
    return [row[index] for row in rows]


def sequence_items(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    distinct: bool = True,
    column_data: Optional[Sequence[Sequence[object]]] = None,
) -> list:
    """Decode a raw result table into the pre-rank item sequence.

    Rows are ordered by (``pos``, ``item``) when a ``pos`` column is
    present (the compiler's sequence-position bookkeeping), then duplicate
    ``item`` values are dropped keeping first occurrences.

    ``distinct=False`` keeps duplicates: the item column of a *value*
    result (an aggregate or literal in the FLWOR return clause) carries one
    value per iteration, and two iterations may legitimately produce the
    same value — dedup is only the node-sequence discipline.

    The decode is column-wise: ``column_data`` (one sequence per column,
    e.g. ``SQLResult.column_data``) is consumed directly when supplied,
    otherwise the needed columns are extracted from ``rows`` in one pass.
    Ordering happens on precomputed key columns (:func:`_sort_keys`) zipped
    with the row position — no per-comparison key function, and the trailing
    position breaks every tie before Python ever compares two item values.
    """
    item_values = _column_values(columns, rows, column_data, "item")
    if "pos" in columns:
        pos_values = _column_values(columns, rows, column_data, "pos")
        order = sorted(
            zip(_sort_keys(pos_values), _sort_keys(item_values), range(len(item_values)))
        )
        item_values = [item_values[entry[2]] for entry in order]
    if not distinct:
        return [value for value in item_values if value is not None]
    seen: set[object] = set()
    items: list = []
    for value in item_values:
        if value in seen:
            continue
        seen.add(value)
        items.append(value)
    return items


def ordered_items(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    distinct: bool = True,
    column_data: Optional[Sequence[Sequence[object]]] = None,
) -> list:
    """Project the ``item`` column of an already ordered/distinct result.

    The join-graph SFW block made the RDBMS enforce ``DISTINCT`` (over the
    full select list) and ``ORDER BY``; the decode step projects the item
    column in row order and keeps each item's *first* occurrence.  The
    keep-first pass matters for FLWOR nests whose select list carries extra
    ordering columns (value joins bind the same node under several outer
    iterations): SQL's DISTINCT dedupes full rows, the XQuery sequence
    dedupes items.  ``NULL`` items are dropped — a ``pre`` rank is never
    NULL; aggregate tails use NULL for "this iteration contributes no item"
    (``fn:avg`` over an empty sequence).
    """
    return first_occurrence_items(
        _column_values(columns, rows, column_data, "item"), distinct=distinct
    )


def first_occurrence_items(values, distinct: bool = True) -> list:
    """Keep the first occurrence of each non-NULL item, preserving order.

    Shared by :func:`ordered_items` (the RDBMS path) and the interpreted
    join-graph decode in :mod:`repro.core.stages`, so the two tails cannot
    drift apart.  ``distinct=False`` keeps every non-NULL value in row
    order — the discipline for *value* results, whose per-iteration
    aggregate values may legitimately repeat.
    """
    if not distinct:
        return [value for value in values if value is not None]
    seen: set[object] = set()
    items: list = []
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        items.append(value)
    return items

"""Schema bootstrap for the SQLite backend.

One table mirrors the Fig. 2 encoding::

    doc(pre INTEGER PRIMARY KEY, size, level, kind, name, value, data)

``pre INTEGER PRIMARY KEY`` makes ``pre`` the rowid, so the table is
physically clustered in ``pre`` (document) order — the paper's "cluster the
table on pre" recommendation comes for free.

:data:`ACCESS_PATH_INDEXES` mirrors the Table VI index proposals the
in-tree relational back-end installs (see
:data:`repro.relational.advisor.TABLE_VI_INDEXES`), translated to SQLite:

* ``(name, kind, level, pre)`` — the paper's ``(name, level, pre)`` shape:
  named child/descendant steps become one index range scan;
* ``(name, kind, pre+size, pre)`` — an *expression* index on the subtree
  end, serving ancestor-axis ranges (``pre + size >= …``);
* ``(value, name, kind, pre)`` / ``(name, kind, data, pre)`` — string and
  numeric value predicates (``data`` is the ``xs:decimal`` cast column);
* ``(kind, level, pre)`` — steps without a name test (``text()``,
  ``node()``, ``*``), which the Table VI set leaves to a table scan.
"""

from __future__ import annotations

import sqlite3
from typing import Sequence

#: Column -> declared SQLite type (affinity) for the ``doc`` table, in
#: :data:`repro.xmldb.encoding.DOC_COLUMNS` order.  ``value`` keeps TEXT
#: affinity so string comparisons stay string comparisons; numeric
#: predicates target ``data`` (REAL), exactly like the compiler emits them.
DOC_COLUMN_TYPES: tuple[tuple[str, str], ...] = (
    ("pre", "INTEGER PRIMARY KEY"),
    ("size", "INTEGER NOT NULL"),
    ("level", "INTEGER NOT NULL"),
    ("kind", "TEXT NOT NULL"),
    ("name", "TEXT"),
    ("value", "TEXT"),
    ("data", "REAL"),
)

#: ``(index name suffix, key column expressions)`` — the access-path set.
ACCESS_PATH_INDEXES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("nklp", ("name", "kind", "level", "pre")),
    ("nksp", ("name", "kind", "(pre + size)", "pre")),
    ("vnkp", ("value", "name", "kind", "pre")),
    ("nkdp", ("name", "kind", "data", "pre")),
    ("klp", ("kind", "level", "pre")),
)

#: Connection-level tuning applied at bootstrap.  The backend is a read-
#: mostly mirror of an in-memory encoding, so durability is deliberately
#: traded away for load speed on file-backed databases.
PRAGMAS: tuple[str, ...] = (
    "PRAGMA journal_mode = OFF",
    "PRAGMA synchronous = OFF",
    "PRAGMA temp_store = MEMORY",
    "PRAGMA cache_size = -65536",  # 64 MiB page cache
)


def create_doc_table(connection: sqlite3.Connection, table_name: str = "doc") -> None:
    """Create the Fig. 2 encoding table (idempotent)."""
    columns = ", ".join(f"{column} {sql_type}" for column, sql_type in DOC_COLUMN_TYPES)
    connection.execute(f"CREATE TABLE IF NOT EXISTS {table_name} ({columns})")


def create_access_path_indexes(
    connection: sqlite3.Connection, table_name: str = "doc"
) -> list[str]:
    """Create :data:`ACCESS_PATH_INDEXES` (idempotent); returns index names."""
    created = []
    for suffix, key_columns in ACCESS_PATH_INDEXES:
        index_name = f"{table_name}_idx_{suffix}"
        keys = ", ".join(key_columns)
        connection.execute(
            f"CREATE INDEX IF NOT EXISTS {index_name} ON {table_name} ({keys})"
        )
        created.append(index_name)
    return created


def bootstrap_schema(
    connection: sqlite3.Connection,
    table_name: str = "doc",
    with_indexes: bool = True,
) -> list[str]:
    """Apply pragmas, create the table and (optionally) the index set."""
    for pragma in PRAGMAS:
        connection.execute(pragma)
    create_doc_table(connection, table_name)
    indexes = create_access_path_indexes(connection, table_name) if with_indexes else []
    connection.commit()
    return indexes


def index_names(connection: sqlite3.Connection, table_name: str = "doc") -> list[str]:
    """Names of all indexes currently defined on ``table_name``."""
    rows = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'index' AND tbl_name = ? "
        "ORDER BY name",
        (table_name,),
    )
    return [name for (name,) in rows]


def insert_statement(table_name: str, columns: Sequence[str]) -> str:
    """The parameterized bulk-INSERT statement for ``executemany``."""
    placeholders = ", ".join("?" for _ in columns)
    return f"INSERT INTO {table_name} ({', '.join(columns)}) VALUES ({placeholders})"

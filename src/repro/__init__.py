"""Reproduction of *XQuery Join Graph Isolation* (Grust, Mayr, Rittinger, ICDE 2009).

The package is organised as follows:

``repro.xmldb``
    XML substrate: parser, infoset model, the ``pre|size|level|kind|name|value|data``
    document encoding of Section II-A, XPath axis semantics, and synthetic
    XMark / DBLP document generators.

``repro.algebra``
    The table algebra of Table I (logical operators, plan DAGs, a reference
    interpreter that evaluates any plan over in-memory tables, and plan
    rendering).

``repro.xquery``
    XQuery front-end for the fragment of Fig. 1 (lexer, parser, XQuery Core
    normalization, and the loop-lifting compiler of Fig. 13).

``repro.core``
    The paper's contribution: plan property inference (Tables II-V), the
    rewrite rules (1)-(17) of Fig. 5, the goal-directed join graph isolation
    rewriter, join-graph extraction, SQL emission, and the end-to-end
    pipeline.

``repro.relational``
    The relational back-end standing in for IBM DB2 V9: tables, B-tree
    indexes, statistics, a SQL parser, a cost-based optimizer with access
    path selection and join ordering, physical operators, an index advisor,
    and a query engine facade.

``repro.purexml``
    The navigational baseline standing in for DB2 pureXML: XML column
    storage (whole / segmented), XMLPATTERN value indexes, and a
    TurboXPath-style XISCAN/XSCAN evaluator.

``repro.sqlbackend``
    The *real* RDBMS backend: the Fig. 2 encoding mirrored into SQLite,
    the paper's access-path indexes, and execution of both emitted SQL
    renderings (isolated SFW block vs stacked WITH-chain) with named
    parameter binding — ``configuration="sql"`` end to end.

``repro.service``
    The concurrent serving layer: ``QueryService`` runs queries from many
    threads over one shared ``Session`` — worker pool, admission control,
    per-query budgets, batched ``execute_many``, per-engine metrics, and
    opt-in resilience (retry with backoff, per-engine circuit breakers,
    and engine-fallback degradation down the equivalence chain).

``repro.testing``
    Deterministic fault injection for the chaos test suite and the
    resilience benchmark: named fault points in the SQLite backend and
    connection pool, scripted or seeded-random fault plans.

``repro.bench``
    Workloads (Q1-Q6), dataset builders, and reporting helpers used by the
    benchmark harness under ``benchmarks/``.
"""

from repro.core.pipeline import (
    CompilationResult,
    PlanCache,
    PreparedQuery,
    XQueryProcessor,
)
from repro.core.session import DocumentStore, Session
from repro.service import (
    BreakerPolicy,
    FallbackPolicy,
    QueryRequest,
    QueryService,
    RetryPolicy,
)
from repro.sqlbackend.backend import SQLiteBackend

__all__ = [
    "XQueryProcessor",
    "CompilationResult",
    "PlanCache",
    "PreparedQuery",
    "QueryRequest",
    "QueryService",
    "RetryPolicy",
    "BreakerPolicy",
    "FallbackPolicy",
    "Session",
    "DocumentStore",
    "SQLiteBackend",
    "__version__",
]

__version__ = "0.4.0"

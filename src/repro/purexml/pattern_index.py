"""XMLPATTERN-style value indexes for the pureXML baseline.

A pattern index is declared over a non-branching forward path (descendant /
child / attribute steps only), e.g. ``/site/people/person/@id``.  Its
entries map the (typed or string) value of every node selected by that path
to the identifiers of the rows (documents / segments) containing the node —
exactly the RID semantics of DB2's XMLPATTERN indexes, which XISCAN then
feeds into the per-document XSCAN traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.xmldb.infoset import NodeKind, XMLNode
from repro.purexml.storage import XMLColumnStore


def _parse_pattern(pattern: str) -> list[tuple[str, str]]:
    """Parse ``/a/b//c/@d`` into (axis, test) steps."""
    steps: list[tuple[str, str]] = []
    remainder = pattern.strip()
    while remainder:
        if remainder.startswith("//"):
            axis, remainder = "descendant", remainder[2:]
        elif remainder.startswith("/"):
            axis, remainder = "child", remainder[1:]
        else:
            axis = "child"
        name, _slash, remainder = remainder.partition("/")
        if _slash:
            remainder = "/" + remainder
        if name.startswith("@"):
            steps.append(("attribute", name[1:]))
        elif name:
            steps.append((axis, name))
    return steps


def _match_step(nodes: Iterable[XMLNode], axis: str, name: str) -> list[XMLNode]:
    result: list[XMLNode] = []
    for node in nodes:
        if axis == "attribute":
            attribute = node.attribute(name)
            if attribute is not None:
                result.append(attribute)
        elif axis == "child":
            result.extend(child for child in node.children if child.kind is NodeKind.ELEM and (name == "*" or child.name == name))
        else:  # descendant
            for descendant in node.iter_descendants(include_self=False):
                if descendant.kind is NodeKind.ELEM and (name == "*" or descendant.name == name):
                    result.append(descendant)
    return result


@dataclass
class XMLPatternIndex:
    """A value index over one XMLPATTERN path."""

    pattern: str
    as_type: str = "VARCHAR"  # or "DOUBLE"
    entries: dict[object, set[int]] = field(default_factory=dict)

    def build(self, store: XMLColumnStore) -> "XMLPatternIndex":
        steps = _parse_pattern(self.pattern)
        for rid, doc in enumerate(store.rows):
            roots = [child for child in doc.children if child.kind is NodeKind.ELEM]
            nodes: list[XMLNode] = roots
            if steps and steps[0][1] == (roots[0].name if roots else None) and steps[0][0] == "child":
                nodes, remaining = roots, steps[1:]
            else:
                remaining = steps
                # Absolute patterns over segmented stores still start at the root shells.
            for axis, name in remaining:
                nodes = _match_step(nodes, axis, name)
            for node in nodes:
                value: object = node.string_value()
                if self.as_type == "DOUBLE":
                    typed = node.typed_decimal()
                    if typed is None:
                        continue
                    value = typed
                self.entries.setdefault(value, set()).add(rid)
        return self

    # -- XISCAN -----------------------------------------------------------------------

    def lookup(self, value: object) -> set[int]:
        """Equality lookup: the RIDs of rows containing a matching node."""
        return set(self.entries.get(value, set()))

    def lookup_range(self, op: str, value: object) -> set[int]:
        """Range lookup (``<``, ``<=``, ``>``, ``>=``) over the indexed values."""
        rids: set[int] = set()
        for candidate, candidate_rids in self.entries.items():
            try:
                if op == "<" and candidate < value:  # type: ignore[operator]
                    rids |= candidate_rids
                elif op == "<=" and candidate <= value:  # type: ignore[operator]
                    rids |= candidate_rids
                elif op == ">" and candidate > value:  # type: ignore[operator]
                    rids |= candidate_rids
                elif op == ">=" and candidate >= value:  # type: ignore[operator]
                    rids |= candidate_rids
                elif op == "=" and candidate == value:
                    rids |= candidate_rids
            except TypeError:
                continue
        return rids

    def covers(self, path: str) -> bool:
        """Crude index-eligibility check: does this index's pattern end like ``path``?"""
        normalized = path.replace("descendant::", "//").replace("child::", "/").replace(
            "attribute::", "/@"
        )
        return self.pattern.endswith(normalized.split("//")[-1]) or self.pattern == normalized

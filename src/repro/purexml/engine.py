"""The pureXML-substitute engine: XISCAN (value index) + XSCAN (traversal).

Example — evaluate navigationally over a column store, ad-hoc and prepared:

>>> from repro.xmldb.parser import parse_xml
>>> from repro.purexml.storage import XMLColumnStore
>>> doc = parse_xml("<a><b>1</b><b>2</b></a>", uri="tiny.xml")
>>> engine = PureXMLEngine(XMLColumnStore.whole(doc))
>>> engine.execute('doc("tiny.xml")/child::a/child::b').node_count
2
>>> prepared = engine.prepare('declare variable $v external; //b[. = $v]')
>>> [node.string_value() for node in prepared.run({"v": "2"}).nodes]
['2']

Binding happens on the surface AST (external variables become literal
nodes), so a bound comparison is XISCAN-eligible exactly like its ad-hoc
literal counterpart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import QueryTimeoutError
from repro.purexml.pattern_index import XMLPatternIndex
from repro.purexml.storage import XMLColumnStore
from repro.purexml.xscan import XScan
from repro.xmldb.infoset import XMLNode
from repro.xquery import ast
from repro.xquery.ast import QueryModule, bind_external_variables, check_bindings
from repro.xquery.parser import parse_module


@dataclass
class PureXMLResult:
    """Result of one pureXML evaluation.

    ``nodes`` holds the result nodes; ``values`` the atomic items the query
    produced alongside them (aggregate results such as ``fn:count(...)`` —
    numbers, in sequence order).
    """

    nodes: list[XMLNode]
    rows_visited: int
    used_index: Optional[str] = None
    values: list = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return len(self.nodes)


@dataclass
class PureXMLEngine:
    """Evaluate the XQuery fragment navigationally over an XML column store."""

    store: XMLColumnStore
    pattern_indexes: list[XMLPatternIndex] = field(default_factory=list)

    def create_pattern_index(self, pattern: str, as_type: str = "VARCHAR") -> XMLPatternIndex:
        index = XMLPatternIndex(pattern, as_type).build(self.store)
        self.pattern_indexes.append(index)
        return index

    # -- evaluation --------------------------------------------------------------------

    def execute(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> PureXMLResult:
        """Evaluate ``source`` over every candidate row (XISCAN → XSCAN).

        ``bindings`` supplies values for external variables the query
        declares; for repeated execution with changing bindings, use
        :meth:`prepare` to skip re-parsing.
        """
        return self._execute_module(parse_module(source), timeout_seconds, bindings)

    def prepare(self, source: str) -> "PreparedPureXMLQuery":
        """Parse once; re-run with fresh bindings via the returned handle."""
        return PreparedPureXMLQuery(engine=self, module=parse_module(source))

    def _execute_module(
        self,
        module: QueryModule,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> PureXMLResult:
        values = check_bindings(module.externals, bindings)
        expr = bind_external_variables(module.body, values) if values else module.body
        started = time.perf_counter()
        deadline = started + timeout_seconds if timeout_seconds else None
        candidate_rids, used_index = self._xiscan(expr)
        nodes: list[XMLNode] = []
        values: list = []
        visited = 0
        for rid in sorted(candidate_rids):
            if deadline is not None and time.perf_counter() > deadline:
                raise QueryTimeoutError(timeout_seconds or 0.0, time.perf_counter() - started)
            doc = self.store.rows[rid]
            visited += 1
            scan = XScan(doc, deadline, budget=timeout_seconds)
            for item in scan.evaluate(expr):
                if isinstance(item, XMLNode):
                    nodes.append(item)
                elif isinstance(item, (int, float)) and not isinstance(item, bool):
                    values.append(item)
        return PureXMLResult(
            nodes=nodes, rows_visited=visited, used_index=used_index, values=values
        )

    # -- XISCAN: index eligibility and lookup ---------------------------------------------

    def _xiscan(self, expr: ast.Expression) -> tuple[set[int], Optional[str]]:
        """Find an eligible value index for a comparison in the query, if any."""
        all_rids = set(range(len(self.store.rows)))
        comparison = _find_literal_comparison(expr)
        if comparison is None or not self.pattern_indexes:
            return all_rids, None
        path_text, op, value = comparison
        for index in self.pattern_indexes:
            if index.covers(path_text):
                rids = index.lookup(value) if op == "=" else index.lookup_range(op, value)
                return rids, index.pattern
        return all_rids, None


def _find_literal_comparison(expr: ast.Expression) -> Optional[tuple[str, str, object]]:
    """Locate a ``path op literal`` comparison usable for an index lookup."""
    if isinstance(expr, ast.Comparison):
        literal = None
        path = None
        if isinstance(expr.right, (ast.StringLiteral, ast.NumberLiteral)):
            literal, path, op = expr.right, expr.left, expr.op
        elif isinstance(expr.left, (ast.StringLiteral, ast.NumberLiteral)):
            literal, path, op = expr.left, expr.right, expr.op
        if literal is not None and isinstance(path, ast.Step):
            return _path_text(path), op, literal.value
        return None
    for child in _children(expr):
        found = _find_literal_comparison(child)
        if found is not None:
            return found
    return None


def _children(expr: ast.Expression) -> tuple[ast.Expression, ...]:
    from repro.xquery.ast import child_expressions

    return child_expressions(expr)


def _path_text(step: ast.Step) -> str:
    parts: list[str] = []
    node: ast.Expression = step
    while isinstance(node, ast.Step):
        prefix = "@" if node.axis == "attribute" else ""
        separator = "//" if node.axis in ("descendant", "descendant-or-self") else "/"
        parts.append(f"{separator}{prefix}{node.node_test}")
        node = node.input
    return "".join(reversed(parts))


@dataclass
class PreparedPureXMLQuery:
    """A parsed pureXML query, re-runnable with fresh bindings.

    Late binding substitutes the external-variable slots of the surface AST
    with literal nodes right before XISCAN/XSCAN, so index eligibility is
    decided per binding.
    """

    engine: PureXMLEngine
    module: QueryModule

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return self.module.parameter_names

    def run(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        timeout_seconds: Optional[float] = None,
    ) -> PureXMLResult:
        """Evaluate with the given bindings (all declared externals required)."""
        return self.engine._execute_module(self.module, timeout_seconds, bindings)

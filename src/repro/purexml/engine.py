"""The pureXML-substitute engine: XISCAN (value index) + XSCAN (traversal)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import QueryTimeoutError
from repro.purexml.pattern_index import XMLPatternIndex
from repro.purexml.storage import XMLColumnStore
from repro.purexml.xscan import XScan
from repro.xmldb.infoset import XMLNode
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


@dataclass
class PureXMLResult:
    """Result of one pureXML evaluation."""

    nodes: list[XMLNode]
    rows_visited: int
    used_index: Optional[str] = None

    @property
    def node_count(self) -> int:
        return len(self.nodes)


@dataclass
class PureXMLEngine:
    """Evaluate the XQuery fragment navigationally over an XML column store."""

    store: XMLColumnStore
    pattern_indexes: list[XMLPatternIndex] = field(default_factory=list)

    def create_pattern_index(self, pattern: str, as_type: str = "VARCHAR") -> XMLPatternIndex:
        index = XMLPatternIndex(pattern, as_type).build(self.store)
        self.pattern_indexes.append(index)
        return index

    # -- evaluation --------------------------------------------------------------------

    def execute(self, source: str, timeout_seconds: Optional[float] = None) -> PureXMLResult:
        """Evaluate ``source`` over every candidate row (XISCAN → XSCAN)."""
        expr = parse_xquery(source)
        started = time.perf_counter()
        deadline = started + timeout_seconds if timeout_seconds else None
        candidate_rids, used_index = self._xiscan(expr)
        nodes: list[XMLNode] = []
        visited = 0
        for rid in sorted(candidate_rids):
            if deadline is not None and time.perf_counter() > deadline:
                raise QueryTimeoutError(timeout_seconds or 0.0, time.perf_counter() - started)
            doc = self.store.rows[rid]
            visited += 1
            scan = XScan(doc, deadline, budget=timeout_seconds)
            for item in scan.evaluate(expr):
                if isinstance(item, XMLNode):
                    nodes.append(item)
        return PureXMLResult(nodes=nodes, rows_visited=visited, used_index=used_index)

    # -- XISCAN: index eligibility and lookup ---------------------------------------------

    def _xiscan(self, expr: ast.Expression) -> tuple[set[int], Optional[str]]:
        """Find an eligible value index for a comparison in the query, if any."""
        all_rids = set(range(len(self.store.rows)))
        comparison = _find_literal_comparison(expr)
        if comparison is None or not self.pattern_indexes:
            return all_rids, None
        path_text, op, value = comparison
        for index in self.pattern_indexes:
            if index.covers(path_text):
                rids = index.lookup(value) if op == "=" else index.lookup_range(op, value)
                return rids, index.pattern
        return all_rids, None


def _find_literal_comparison(expr: ast.Expression) -> Optional[tuple[str, str, object]]:
    """Locate a ``path op literal`` comparison usable for an index lookup."""
    if isinstance(expr, ast.Comparison):
        literal = None
        path = None
        if isinstance(expr.right, (ast.StringLiteral, ast.NumberLiteral)):
            literal, path, op = expr.right, expr.left, expr.op
        elif isinstance(expr.left, (ast.StringLiteral, ast.NumberLiteral)):
            literal, path, op = expr.left, expr.right, expr.op
        if literal is not None and isinstance(path, ast.Step):
            return _path_text(path), op, literal.value
        return None
    for child in _children(expr):
        found = _find_literal_comparison(child)
        if found is not None:
            return found
    return None


def _children(expr: ast.Expression) -> tuple[ast.Expression, ...]:
    from repro.xquery.ast import child_expressions

    return child_expressions(expr)


def _path_text(step: ast.Step) -> str:
    parts: list[str] = []
    node: ast.Expression = step
    while isinstance(node, ast.Step):
        prefix = "@" if node.axis == "attribute" else ""
        separator = "//" if node.axis in ("descendant", "descendant-or-self") else "/"
        parts.append(f"{separator}{prefix}{node.node_test}")
        node = node.input
    return "".join(reversed(parts))

"""Navigational baseline standing in for DB2 pureXML™ (Section IV-B).

The engine stores XML documents as per-row node trees (either one
monolithic document per row — the *whole* setup — or many small segments —
the *segmented* setup), maintains XMLPATTERN-style value indexes whose
lookups return row identifiers (XISCAN), and evaluates the XQuery fragment
by navigating the node trees of the candidate rows (XSCAN, modelled after
TurboXPath).
"""

from repro.purexml.engine import PureXMLEngine
from repro.purexml.pattern_index import XMLPatternIndex
from repro.purexml.storage import XMLColumnStore, segment_document

__all__ = ["PureXMLEngine", "XMLColumnStore", "XMLPatternIndex", "segment_document"]

"""XML column storage for the pureXML baseline.

A :class:`XMLColumnStore` is a table with a single XML-typed column: each
row holds one document tree.  The *whole* design stores the full document
in one row; the *segmented* design cuts the document into many small
subtree segments (the paper cuts the 110 MB XMark instance into ~23,000
segments of 1-6 KB and DBLP into one segment per publication).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmldb.infoset import NodeKind, XMLNode, document


def segment_document(doc: XMLNode, segment_depth: int = 2) -> list[XMLNode]:
    """Cut a document into subtree segments rooted at ``segment_depth``.

    Every element at ``segment_depth`` below the document node becomes its
    own segment document (wrapped in a document node carrying the original
    URI); shallower structure is replicated so that absolute paths still
    match.
    """
    segments: list[XMLNode] = []
    uri = doc.name or "segment.xml"

    def wrap(path: list[XMLNode], subtree: XMLNode) -> XMLNode:
        current = subtree
        for ancestor in reversed(path):
            shell = XMLNode(NodeKind.ELEM, name=ancestor.name)
            for attribute in ancestor.attributes:
                shell.add_attribute(XMLNode(NodeKind.ATTR, attribute.name, attribute.value))
            shell.add_child(current)
            current = shell
        return document(uri, current)

    def walk(node: XMLNode, path: list[XMLNode], depth: int) -> None:
        for child in node.children:
            if child.kind is not NodeKind.ELEM:
                continue
            if depth + 1 >= segment_depth:
                segments.append(wrap(path, child))
            else:
                walk(child, path + [child], depth + 1)

    root_elements = [child for child in doc.children if child.kind is NodeKind.ELEM]
    for root in root_elements:
        if segment_depth <= 1:
            segments.append(wrap([], root))
        else:
            walk(root, [root], 1)
    return segments or [doc]


@dataclass
class XMLColumnStore:
    """A table of XML documents (one tree per row)."""

    uri: str
    rows: list[XMLNode] = field(default_factory=list)
    segmented: bool = False

    @staticmethod
    def whole(doc: XMLNode) -> "XMLColumnStore":
        """Store the document as one monolithic row."""
        return XMLColumnStore(uri=doc.name or "document.xml", rows=[doc], segmented=False)

    @staticmethod
    def from_segments(doc: XMLNode, segment_depth: int = 2) -> "XMLColumnStore":
        """Store the document as many small segments (the paper's preferred design)."""
        return XMLColumnStore(
            uri=doc.name or "document.xml",
            rows=segment_document(doc, segment_depth),
            segmented=True,
        )

    def __len__(self) -> int:
        return len(self.rows)

"""XSCAN: navigational evaluation of the XQuery fragment over node trees.

This is the TurboXPath-style tree traversal the pureXML baseline performs on
every candidate row after the (optional) XISCAN index lookup.  It evaluates
the same AST the relational pipeline uses, but directly over
:class:`~repro.xmldb.infoset.XMLNode` trees — no encoding, no joins.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import PureXMLError, QueryTimeoutError
from repro.xmldb.infoset import NodeKind, XMLNode
from repro.xquery import ast


class XScan:
    """Evaluate one (surface or core) XQuery AST over one document tree.

    ``deadline`` is an absolute ``time.perf_counter()`` instant; ``budget``
    is the caller's original budget in seconds, threaded through so that a
    timeout reports the real budget and measured elapsed time instead of
    placeholder zeros.
    """

    def __init__(
        self,
        doc: XMLNode,
        deadline: Optional[float] = None,
        budget: Optional[float] = None,
    ):
        self.doc = doc
        self.deadline = deadline
        self.budget = budget

    def _check(self) -> None:
        if self.deadline is not None:
            now = time.perf_counter()
            if now > self.deadline:
                budget = self.budget if self.budget is not None else 0.0
                start = self.deadline - budget if self.budget is not None else self.deadline
                raise QueryTimeoutError(budget, now - start)

    def evaluate(self, expr: ast.Expression, env: Optional[dict[str, list]] = None) -> list:
        env = env or {}
        self._check()
        if isinstance(expr, ast.Doc) or isinstance(expr, ast.Root):
            return [self.doc]
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise PureXMLError(f"unbound variable ${expr.name}")
            return env[expr.name]
        if isinstance(expr, (ast.StringLiteral,)):
            return [expr.value]
        if isinstance(expr, ast.NumberLiteral):
            return [expr.value]
        if isinstance(expr, ast.EmptySequence):
            return []
        if isinstance(expr, ast.FsDdo):
            return self._document_order(self.evaluate(expr.argument, env))
        if isinstance(expr, ast.FnBoolean):
            return [self._effective_boolean_value(self.evaluate(expr.argument, env))]
        if isinstance(expr, ast.Step):
            context = self.evaluate(expr.input, env)
            result: list[XMLNode] = []
            for node in context:
                if isinstance(node, XMLNode):
                    result.extend(self._step(node, expr.axis, expr.node_test))
            return self._document_order(result)
        if isinstance(expr, ast.Filter):
            context = self.evaluate(expr.input, env)
            if isinstance(expr.predicate, ast.NumberLiteral):
                # Numeric predicate == positional test (position() = n).
                position = expr.predicate.value
                if float(position).is_integer() and 1 <= int(position) <= len(context):
                    return [context[int(position) - 1]]
                return []
            return [node for node in context if self._boolean(expr.predicate, env, node)]
        if isinstance(expr, ast.PositionFilter):
            context = self.evaluate(expr.sequence, env)
            if expr.parameter is not None:
                raise PureXMLError(
                    f"positional parameter ${expr.parameter} is unbound; bind it "
                    "before XSCAN evaluation"
                )
            position = expr.position
            if (
                position is not None
                and float(position).is_integer()
                and 1 <= int(position) <= len(context)
            ):
                return [context[int(position) - 1]]
            return []
        if isinstance(expr, ast.Aggregate):
            sequence = self.evaluate(expr.argument, env)
            if expr.function == "count":
                return [len(sequence)]
            values = self._atomize_numeric(sequence)
            if expr.function == "sum":
                return [sum(values) if values else 0]
            return [sum(values) / len(values)] if values else []  # avg(()) = ()
        if isinstance(expr, ast.ForExpr):
            sequence = self.evaluate(expr.sequence, env)
            if expr.order_key is not None:
                return self._ordered_for(expr, sequence, env)
            result = []
            for item in sequence:
                inner = dict(env)
                inner[expr.var] = [item]
                result.extend(self.evaluate(expr.body, inner))
            return result
        if isinstance(expr, ast.Exists):
            return [len(self.evaluate(expr.argument, env)) > 0]
        if isinstance(expr, ast.Empty):
            return [len(self.evaluate(expr.argument, env)) == 0]
        if isinstance(expr, ast.Quantified):
            sequence = self.evaluate(expr.sequence, env)
            verdicts = []
            for item in sequence:
                inner = dict(env)
                inner[expr.var] = [item]
                verdicts.append(self._boolean(expr.predicate, inner, None))
            if expr.quantifier == "some":
                return [any(verdicts)]
            return [all(verdicts)]
        if isinstance(expr, ast.LetExpr):
            inner = dict(env)
            inner[expr.var] = self.evaluate(expr.value, env)
            return self.evaluate(expr.body, inner)
        if isinstance(expr, ast.IfExpr):
            if self._boolean(expr.condition, env, None):
                return self.evaluate(expr.then_branch, env)
            return []
        if isinstance(expr, ast.AndExpr):
            left = self._boolean(expr.left, env, None)
            right = self._boolean(expr.right, env, None)
            return [True] if left and right else []
        if isinstance(expr, ast.Comparison):
            return [True] if self._compare(expr, env, None) else []
        if isinstance(expr, ast.ExternalVar):
            raise PureXMLError(
                f"external variable ${expr.name} is unbound; bind it "
                "(PureXMLEngine.prepare / bindings=) before XSCAN evaluation"
            )
        raise PureXMLError(f"cannot evaluate AST node {type(expr).__name__}")

    # -- helpers -----------------------------------------------------------------------

    def _ordered_for(self, expr: ast.ForExpr, sequence: list, env: dict[str, list]) -> list:
        """``for ... order by K``: bindings sorted by key string value.

        Mirrors the relational ORD rule exactly — each binding contributes
        once per key node (the supported contract is a single existent
        string-valued key, under which this is a plain stable sort), keys
        compare as strings ascending, and binding order breaks ties.
        Bindings whose key sequence is empty contribute nothing (the inner
        key join drops them).
        """
        keyed: list[tuple[str, int, list]] = []
        for position, item in enumerate(sequence):
            inner = dict(env)
            inner[expr.var] = [item]
            keys = self._atomize(self.evaluate(expr.order_key, inner))
            if not keys:
                continue
            body = self.evaluate(expr.body, inner)
            for key in keys:
                keyed.append((str(key), position, body))
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        result: list = []
        for _, _, body in keyed:
            result.extend(body)
        return result

    def _step(self, node: XMLNode, axis: str, node_test: str) -> list[XMLNode]:
        from repro.xmldb.infoset import NodeKind

        def test(candidate: XMLNode, principal: NodeKind) -> bool:
            if node_test == "node()":
                return True
            if node_test == "text()":
                return candidate.kind is NodeKind.TEXT
            if node_test == "*":
                return candidate.kind is principal
            return candidate.kind is principal and candidate.name == node_test

        if axis == "attribute":
            return [a for a in node.attributes if test(a, NodeKind.ATTR)]
        if axis == "child":
            return [c for c in node.children if test(c, NodeKind.ELEM)]
        if axis == "descendant":
            return [
                d
                for d in node.iter_descendants(include_self=False)
                if d.kind is not NodeKind.ATTR and test(d, NodeKind.ELEM)
            ]
        if axis == "descendant-or-self":
            return [d for d in node.iter_descendants(include_self=True) if test(d, NodeKind.ELEM) or node_test == "node()"]
        if axis == "self":
            return [node] if test(node, NodeKind.ELEM) else []
        if axis == "parent":
            return [node.parent] if node.parent is not None and test(node.parent, NodeKind.ELEM) else []
        if axis == "ancestor":
            result = []
            current = node.parent
            while current is not None:
                if test(current, NodeKind.ELEM):
                    result.append(current)
                current = current.parent
            return result
        raise PureXMLError(f"axis {axis!r} is not supported by XSCAN")

    @staticmethod
    def _effective_boolean_value(sequence: list) -> bool:
        """``fn:boolean`` semantics (XQuery 1.0, 2.4.3).

        Empty sequence -> false; any sequence whose first item is a node ->
        true; a singleton boolean / string / number follows the usual value
        rules; every other operand is a type error (err:FORG0006).
        """
        if not sequence:
            return False
        first = sequence[0]
        if isinstance(first, XMLNode):
            return True
        if len(sequence) > 1:
            raise PureXMLError(
                "fn:boolean on a multi-item sequence whose first item is not a node"
            )
        if isinstance(first, bool):
            return first
        if isinstance(first, str):
            return len(first) > 0
        if isinstance(first, (int, float)):
            return first == first and first != 0  # NaN != NaN
        raise PureXMLError(f"fn:boolean is undefined for {type(first).__name__} items")

    def _boolean(self, expr: ast.Expression, env: dict[str, list], context: Optional[XMLNode]) -> bool:
        if isinstance(expr, ast.AndExpr):
            return self._boolean(expr.left, env, context) and self._boolean(expr.right, env, context)
        if isinstance(expr, ast.Comparison):
            return self._compare(expr, env, context)
        return self._effective_boolean_value(self._evaluate_in_context(expr, env, context))

    def _compare(self, expr: ast.Comparison, env: dict[str, list], context: Optional[XMLNode]) -> bool:
        left = self._atomize(self._evaluate_in_context(expr.left, env, context))
        right = self._atomize(self._evaluate_in_context(expr.right, env, context))
        for lv in left:
            for rv in right:
                if _general_compare(lv, expr.op, rv):
                    return True
        return False

    def _evaluate_in_context(
        self, expr: ast.Expression, env: dict[str, list], context: Optional[XMLNode]
    ) -> list:
        if context is not None:
            scan = XScan(self.doc, self.deadline, self.budget)
            env = dict(env)
            env["__context__"] = [context]
            rewritten = _replace_context(expr)
            return scan.evaluate(rewritten, env)
        return self.evaluate(expr, env)

    @staticmethod
    def _atomize_numeric(values: list) -> list:
        """Numeric atomization mirroring the encoding's ``data`` column.

        Nodes whose string value does not parse as a number contribute
        nothing (SQL's NULL discipline: ``SUM``/``AVG`` ignore them), so a
        navigational aggregate matches the relational configurations.
        """
        numbers = []
        for value in values:
            if isinstance(value, XMLNode):
                value = value.string_value()
            try:
                numbers.append(float(value))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
        return numbers

    @staticmethod
    def _atomize(values: list) -> list:
        atoms = []
        for value in values:
            if isinstance(value, XMLNode):
                atoms.append(value.string_value())
            else:
                atoms.append(value)
        return atoms

    @staticmethod
    def _document_order(nodes: list) -> list:
        ordered = []
        seen: set[int] = set()
        for node in nodes:
            if isinstance(node, XMLNode) and id(node) in seen:
                continue
            if isinstance(node, XMLNode):
                seen.add(id(node))
            ordered.append(node)
        return ordered


def _replace_context(expr: ast.Expression) -> ast.Expression:
    if isinstance(expr, ast.ContextItem):
        return ast.VarRef("__context__")
    if isinstance(expr, ast.Step):
        return ast.Step(_replace_context(expr.input), expr.axis, expr.node_test)
    if isinstance(expr, ast.Filter):
        return ast.Filter(_replace_context(expr.input), expr.predicate)
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(_replace_context(expr.left), expr.op, _replace_context(expr.right))
    if isinstance(expr, ast.AndExpr):
        return ast.AndExpr(_replace_context(expr.left), _replace_context(expr.right))
    if isinstance(expr, ast.Aggregate):
        return ast.Aggregate(expr.function, _replace_context(expr.argument))
    if isinstance(expr, ast.Exists):
        return ast.Exists(_replace_context(expr.argument))
    if isinstance(expr, ast.Empty):
        return ast.Empty(_replace_context(expr.argument))
    if isinstance(expr, ast.Quantified):
        return ast.Quantified(
            expr.quantifier,
            expr.var,
            _replace_context(expr.sequence),
            _replace_context(expr.predicate),
        )
    return expr


def _general_compare(left: object, op: str, right: object) -> bool:
    # General comparisons over untyped values: compare numerically when both
    # sides cast to a number and the literal side is numeric, else as strings.
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            left_value = float(left)  # type: ignore[arg-type]
            right_value = float(right)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
    else:
        left_value, right_value = str(left), str(right)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    if op == "<":
        return left_value < right_value
    if op == "<=":
        return left_value <= right_value
    if op == ">":
        return left_value > right_value
    if op == ">=":
        return left_value >= right_value
    raise PureXMLError(f"unknown comparison operator {op!r}")

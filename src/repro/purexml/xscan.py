"""XSCAN: navigational evaluation of the XQuery fragment over node trees.

This is the TurboXPath-style tree traversal the pureXML baseline performs on
every candidate row after the (optional) XISCAN index lookup.  It evaluates
the same AST the relational pipeline uses, but directly over
:class:`~repro.xmldb.infoset.XMLNode` trees — no encoding, no joins.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import PureXMLError, QueryTimeoutError
from repro.xmldb.infoset import NodeKind, XMLNode
from repro.xquery import ast


class XScan:
    """Evaluate one (surface or core) XQuery AST over one document tree."""

    def __init__(self, doc: XMLNode, deadline: Optional[float] = None):
        self.doc = doc
        self.deadline = deadline

    def _check(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise QueryTimeoutError(0.0, 0.0)

    def evaluate(self, expr: ast.Expression, env: Optional[dict[str, list]] = None) -> list:
        env = env or {}
        self._check()
        if isinstance(expr, ast.Doc) or isinstance(expr, ast.Root):
            return [self.doc]
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise PureXMLError(f"unbound variable ${expr.name}")
            return env[expr.name]
        if isinstance(expr, (ast.StringLiteral,)):
            return [expr.value]
        if isinstance(expr, ast.NumberLiteral):
            return [expr.value]
        if isinstance(expr, ast.EmptySequence):
            return []
        if isinstance(expr, ast.FsDdo):
            return self._document_order(self.evaluate(expr.argument, env))
        if isinstance(expr, ast.FnBoolean):
            return self.evaluate(expr.argument, env)
        if isinstance(expr, ast.Step):
            context = self.evaluate(expr.input, env)
            result: list[XMLNode] = []
            for node in context:
                if isinstance(node, XMLNode):
                    result.extend(self._step(node, expr.axis, expr.node_test))
            return self._document_order(result)
        if isinstance(expr, ast.Filter):
            context = self.evaluate(expr.input, env)
            return [node for node in context if self._boolean(expr.predicate, env, node)]
        if isinstance(expr, ast.ForExpr):
            sequence = self.evaluate(expr.sequence, env)
            result = []
            for item in sequence:
                inner = dict(env)
                inner[expr.var] = [item]
                result.extend(self.evaluate(expr.body, inner))
            return result
        if isinstance(expr, ast.LetExpr):
            inner = dict(env)
            inner[expr.var] = self.evaluate(expr.value, env)
            return self.evaluate(expr.body, inner)
        if isinstance(expr, ast.IfExpr):
            if self._boolean(expr.condition, env, None):
                return self.evaluate(expr.then_branch, env)
            return []
        if isinstance(expr, ast.AndExpr):
            left = self._boolean(expr.left, env, None)
            right = self._boolean(expr.right, env, None)
            return [True] if left and right else []
        if isinstance(expr, ast.Comparison):
            return [True] if self._compare(expr, env, None) else []
        raise PureXMLError(f"cannot evaluate AST node {type(expr).__name__}")

    # -- helpers -----------------------------------------------------------------------

    def _step(self, node: XMLNode, axis: str, node_test: str) -> list[XMLNode]:
        from repro.xmldb.infoset import NodeKind

        def test(candidate: XMLNode, principal: NodeKind) -> bool:
            if node_test == "node()":
                return True
            if node_test == "text()":
                return candidate.kind is NodeKind.TEXT
            if node_test == "*":
                return candidate.kind is principal
            return candidate.kind is principal and candidate.name == node_test

        if axis == "attribute":
            return [a for a in node.attributes if test(a, NodeKind.ATTR)]
        if axis == "child":
            return [c for c in node.children if test(c, NodeKind.ELEM)]
        if axis == "descendant":
            return [
                d
                for d in node.iter_descendants(include_self=False)
                if d.kind is not NodeKind.ATTR and test(d, NodeKind.ELEM)
            ]
        if axis == "descendant-or-self":
            return [d for d in node.iter_descendants(include_self=True) if test(d, NodeKind.ELEM) or node_test == "node()"]
        if axis == "self":
            return [node] if test(node, NodeKind.ELEM) else []
        if axis == "parent":
            return [node.parent] if node.parent is not None and test(node.parent, NodeKind.ELEM) else []
        if axis == "ancestor":
            result = []
            current = node.parent
            while current is not None:
                if test(current, NodeKind.ELEM):
                    result.append(current)
                current = current.parent
            return result
        raise PureXMLError(f"axis {axis!r} is not supported by XSCAN")

    def _boolean(self, expr: ast.Expression, env: dict[str, list], context: Optional[XMLNode]) -> bool:
        if isinstance(expr, ast.AndExpr):
            return self._boolean(expr.left, env, context) and self._boolean(expr.right, env, context)
        if isinstance(expr, ast.Comparison):
            return self._compare(expr, env, context)
        return bool(self._evaluate_in_context(expr, env, context))

    def _compare(self, expr: ast.Comparison, env: dict[str, list], context: Optional[XMLNode]) -> bool:
        left = self._atomize(self._evaluate_in_context(expr.left, env, context))
        right = self._atomize(self._evaluate_in_context(expr.right, env, context))
        for lv in left:
            for rv in right:
                if _general_compare(lv, expr.op, rv):
                    return True
        return False

    def _evaluate_in_context(
        self, expr: ast.Expression, env: dict[str, list], context: Optional[XMLNode]
    ) -> list:
        if context is not None:
            scan = XScan(self.doc, self.deadline)
            env = dict(env)
            env["__context__"] = [context]
            rewritten = _replace_context(expr)
            return scan.evaluate(rewritten, env)
        return self.evaluate(expr, env)

    @staticmethod
    def _atomize(values: list) -> list:
        atoms = []
        for value in values:
            if isinstance(value, XMLNode):
                atoms.append(value.string_value())
            else:
                atoms.append(value)
        return atoms

    @staticmethod
    def _document_order(nodes: list) -> list:
        ordered = []
        seen: set[int] = set()
        for node in nodes:
            if isinstance(node, XMLNode) and id(node) in seen:
                continue
            if isinstance(node, XMLNode):
                seen.add(id(node))
            ordered.append(node)
        return ordered


def _replace_context(expr: ast.Expression) -> ast.Expression:
    if isinstance(expr, ast.ContextItem):
        return ast.VarRef("__context__")
    if isinstance(expr, ast.Step):
        return ast.Step(_replace_context(expr.input), expr.axis, expr.node_test)
    if isinstance(expr, ast.Filter):
        return ast.Filter(_replace_context(expr.input), expr.predicate)
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(_replace_context(expr.left), expr.op, _replace_context(expr.right))
    if isinstance(expr, ast.AndExpr):
        return ast.AndExpr(_replace_context(expr.left), _replace_context(expr.right))
    return expr


def _general_compare(left: object, op: str, right: object) -> bool:
    # General comparisons over untyped values: compare numerically when both
    # sides cast to a number and the literal side is numeric, else as strings.
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            left_value = float(left)  # type: ignore[arg-type]
            right_value = float(right)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
    else:
        left_value, right_value = str(left), str(right)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    if op == "<":
        return left_value < right_value
    if op == "<=":
        return left_value <= right_value
    if op == ">":
        return left_value > right_value
    if op == ">=":
        return left_value >= right_value
    raise PureXMLError(f"unknown comparison operator {op!r}")

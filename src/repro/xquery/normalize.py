"""XQuery Core normalization.

Following Section II-C of the paper, the compiler expects its input *after*
XQuery Core normalization, i.e. with

* explicit duplicate-node removal and document-order enforcement after path
  expressions (``fs:distinct-doc-order``, abbreviated ``fs:ddo``),
* explicit effective-boolean-value computation in conditionals
  (``fn:boolean``), and
* path predicates desugared into ``for``/``if`` nests
  (``E[p]  ≡  for $dot in fs:ddo(E) return if (fn:boolean(p)) then $dot else ()``).

This module performs that normalization on the surface AST.  Deviations
from the W3C formal semantics, chosen to keep the initial plans close to
Fig. 4 of the paper:

* ``fs:ddo`` is applied once around every maximal location-step chain
  rather than after every individual step (the final ``fs:ddo`` already
  establishes the required set/order semantics);
* operands of general comparisons are not wrapped in ``fs:ddo`` (the COMP
  rule's ``δ(π_iter(...))`` makes order and duplicates irrelevant there);
* ``where`` clauses and conjunctions (``and``) become nested conditionals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import XQueryCompilationError
from repro.xquery.ast import (
    Aggregate,
    AndExpr,
    Comparison,
    ContextItem,
    Doc,
    Empty,
    EmptySequence,
    Exists,
    Expression,
    ExternalVar,
    Filter,
    FnBoolean,
    ForExpr,
    FsDdo,
    IfExpr,
    LetExpr,
    NumberLiteral,
    PositionFilter,
    Quantified,
    Root,
    Step,
    StringLiteral,
    VarRef,
)

#: Two-valued negation of the general comparison operators, used to desugar
#: ``every`` (exact for single-valued operands — the supported contract;
#: over multi-valued operands general-comparison negation is not the
#: operator complement).
_NEGATED_COMPARISON = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass
class _NormalizerState:
    default_document: Optional[str]
    fresh_counter: int = 0

    def fresh_var(self) -> str:
        self.fresh_counter += 1
        return f"dot_{self.fresh_counter}"


def normalize(expr: Expression, default_document: Optional[str] = None) -> Expression:
    """Normalize a surface AST into XQuery Core form.

    ``default_document`` resolves a leading ``/`` (queries such as Q3-Q6 of
    the paper are stated relative to a statically known context document).
    """
    state = _NormalizerState(default_document=default_document)
    return _norm(expr, state)


def _norm(expr: Expression, state: _NormalizerState) -> Expression:
    """Normalize an expression in *sequence* position."""
    if isinstance(expr, Step):
        return FsDdo(_norm_path(expr, state))
    if isinstance(expr, Filter):
        return _norm_filter(expr, state)
    if isinstance(expr, ForExpr):
        return ForExpr(
            expr.var,
            _norm(expr.sequence, state),
            _norm(expr.body, state),
            _norm(expr.order_key, state) if expr.order_key is not None else None,
        )
    if isinstance(expr, LetExpr):
        return LetExpr(expr.var, _norm(expr.value, state), _norm(expr.body, state))
    if isinstance(expr, IfExpr):
        return _norm_condition(expr.condition, _norm(expr.then_branch, state), state)
    if isinstance(expr, Doc):
        return expr
    if isinstance(expr, Root):
        return _resolve_root(state)
    if isinstance(expr, VarRef):
        return expr
    if isinstance(expr, (StringLiteral, NumberLiteral, EmptySequence, ExternalVar)):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(_norm(expr.left, state), expr.op, _norm(expr.right, state))
    if isinstance(expr, Aggregate):
        return Aggregate(expr.function, _norm(expr.argument, state))
    if isinstance(expr, (FnBoolean, FsDdo, PositionFilter)):
        # Already-core input is accepted verbatim (useful in tests).
        return expr
    if isinstance(expr, ContextItem):
        raise XQueryCompilationError(
            "the context item '.' may only appear inside a path predicate"
        )
    if isinstance(expr, AndExpr):
        raise XQueryCompilationError("'and' may only appear in a condition position")
    if isinstance(expr, (Exists, Empty, Quantified)):
        name = {
            Exists: "fn:exists",
            Empty: "fn:empty",
            Quantified: "a quantified expression",
        }[type(expr)]
        raise XQueryCompilationError(
            f"{name} is only supported in condition position "
            "(where clauses, if tests and predicates)"
        )
    raise XQueryCompilationError(f"cannot normalize AST node {type(expr).__name__}")


def _norm_path(expr: Expression, state: _NormalizerState) -> Expression:
    """Normalize the spine of a location-step chain without wrapping it in ddo."""
    if isinstance(expr, Step):
        return Step(_norm_path(expr.input, state), expr.axis, expr.node_test)
    return _norm(expr, state)


def _norm_filter(expr: Filter, state: _NormalizerState) -> Expression:
    """Desugar ``E[p]`` into ``for $dot in fs:ddo(E) return if (...) then $dot else ()``.

    A *numeric* predicate is positional (XPath 3.1, 3.4.2.2: a predicate
    whose value is a number tests ``position() = n``, it is not an effective
    boolean value) and becomes the :class:`PositionFilter` core form — for a
    literal position and likewise for a numeric external variable
    (``//item[$n]``), whose value arrives at bind time.
    """
    if isinstance(expr.predicate, NumberLiteral):
        return PositionFilter(_norm(expr.input, state), position=expr.predicate.value)
    if isinstance(expr.predicate, ExternalVar) and expr.predicate.is_numeric:
        return PositionFilter(_norm(expr.input, state), parameter=expr.predicate.name)
    dot = state.fresh_var()
    source = _norm(expr.input, state)
    predicate = _replace_context(expr.predicate, VarRef(dot))
    body = _norm_condition(predicate, VarRef(dot), state)
    return ForExpr(dot, source, body)


def _norm_condition(condition: Expression, then_branch: Expression, state: _NormalizerState) -> Expression:
    """Build the core conditional for ``if (condition) then then_branch else ()``.

    Conjunctions become nested conditionals; every leaf condition is wrapped
    in ``fn:boolean``.
    """
    if isinstance(condition, AndExpr):
        inner = _norm_condition(condition.right, then_branch, state)
        return _norm_condition(condition.left, inner, state)
    if isinstance(condition, Exists):
        # exists(E) in condition position IS the existence test on E.
        return _norm_condition(condition.argument, then_branch, state)
    if isinstance(condition, Empty):
        # empty(E) ≡ count(E) = 0 — the aggregate comparison keeps empty
        # iterations visible on every engine (Phase B's empty-group rule).
        return _norm_condition(
            Comparison(Aggregate("count", condition.argument), "=", NumberLiteral(0.0)),
            then_branch,
            state,
        )
    if isinstance(condition, Quantified):
        return _norm_quantified(condition, then_branch, state)
    if isinstance(condition, Comparison):
        normalized = Comparison(
            _norm_comparison_operand(condition.left, state),
            condition.op,
            _norm_comparison_operand(condition.right, state),
        )
        return IfExpr(FnBoolean(normalized), then_branch)
    # Existence test: a path / variable / doc expression.
    return IfExpr(FnBoolean(_norm(condition, state)), then_branch)


def _norm_quantified(
    condition: Quantified, then_branch: Expression, state: _NormalizerState
) -> Expression:
    """Desugar ``some``/``every`` into the fragment's own machinery.

    ``some $x in E satisfies P`` is the existence test of the witness loop
    ``for $x in E return if (P) then $x else ()`` (a semijoin after loop
    lifting); ``every $x in E satisfies P`` counts the *violations* —
    ``fn:count(for $x in E return if (not P) then $x else ()) = 0`` — an
    anti-semijoin realized through the empty-group-preserving aggregate
    comparison.
    """
    if condition.quantifier == "some":
        witness = ForExpr(
            condition.var,
            condition.sequence,
            IfExpr(condition.predicate, VarRef(condition.var)),
        )
        return IfExpr(FnBoolean(_norm(witness, state)), then_branch)
    violations = ForExpr(
        condition.var,
        condition.sequence,
        IfExpr(_negate_condition(condition.predicate), VarRef(condition.var)),
    )
    return _norm_condition(
        Comparison(Aggregate("count", violations), "=", NumberLiteral(0.0)),
        then_branch,
        state,
    )


def _negate_condition(predicate: Expression) -> Expression:
    """Negate a ``satisfies`` predicate for the ``every`` desugaring."""
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.left, _NEGATED_COMPARISON[predicate.op], predicate.right
        )
    if isinstance(predicate, Exists):
        return Empty(predicate.argument)
    if isinstance(predicate, Empty):
        return Exists(predicate.argument)
    if isinstance(predicate, AndExpr):
        raise XQueryCompilationError(
            "'every' over a conjunction is not supported (its negation is a "
            "disjunction, which is outside the fragment); split the quantifier"
        )
    if isinstance(predicate, Quantified):
        raise XQueryCompilationError("nested quantified expressions are not supported")
    # An existence-test predicate: every binding must yield something.
    return Empty(predicate)


def _norm_comparison_operand(expr: Expression, state: _NormalizerState) -> Expression:
    """Comparison operands: literals stay, node expressions are normalized without ddo."""
    if isinstance(expr, (StringLiteral, NumberLiteral)):
        return expr
    if isinstance(expr, Step):
        return _norm_path(expr, state)
    return _norm(expr, state)


def _resolve_root(state: _NormalizerState) -> Expression:
    if state.default_document is None:
        raise XQueryCompilationError(
            "a leading '/' needs a statically known context document; "
            "pass default_document= or start the path with doc(...)"
        )
    return Doc(state.default_document)


def _replace_context(expr: Expression, replacement: Expression) -> Expression:
    """Substitute the context item inside a predicate by the predicate variable."""
    if isinstance(expr, ContextItem):
        return replacement
    if isinstance(expr, Step):
        return Step(_replace_context(expr.input, replacement), expr.axis, expr.node_test)
    if isinstance(expr, Filter):
        return Filter(_replace_context(expr.input, replacement), expr.predicate)
    if isinstance(expr, AndExpr):
        return AndExpr(
            _replace_context(expr.left, replacement), _replace_context(expr.right, replacement)
        )
    if isinstance(expr, Comparison):
        return Comparison(
            _replace_context(expr.left, replacement),
            expr.op,
            _replace_context(expr.right, replacement),
        )
    if isinstance(expr, ForExpr):
        return ForExpr(
            expr.var,
            _replace_context(expr.sequence, replacement),
            _replace_context(expr.body, replacement),
            _replace_context(expr.order_key, replacement)
            if expr.order_key is not None
            else None,
        )
    if isinstance(expr, LetExpr):
        return LetExpr(
            expr.var, _replace_context(expr.value, replacement), _replace_context(expr.body, replacement)
        )
    if isinstance(expr, IfExpr):
        return IfExpr(
            _replace_context(expr.condition, replacement),
            _replace_context(expr.then_branch, replacement),
        )
    if isinstance(expr, Aggregate):
        return Aggregate(expr.function, _replace_context(expr.argument, replacement))
    if isinstance(expr, Exists):
        return Exists(_replace_context(expr.argument, replacement))
    if isinstance(expr, Empty):
        return Empty(_replace_context(expr.argument, replacement))
    if isinstance(expr, Quantified):
        return Quantified(
            expr.quantifier,
            expr.var,
            _replace_context(expr.sequence, replacement),
            _replace_context(expr.predicate, replacement),
        )
    return expr

"""The loop-lifting XQuery compiler (Fig. 13 of the paper).

Every expression ``e`` is compiled relative to

* an *environment* Γ mapping in-scope variables to algebra plans, and
* a *loop* plan — a single-column table ``iter`` holding one row per
  iteration of the innermost enclosing ``for`` loop.

The compiled plan of ``e`` is a table with schema ``iter | pos | item``:
a row ``[i, p, v]`` states that in iteration ``i`` the evaluation of ``e``
produced the node with ``pre`` rank ``v`` at sequence position ``p``.

The implemented inference rules are DOC, DDO, STEP, IF, COMP, FOR and VAR
of the paper's appendix, extended — as its Section III-C describes — with
LET bindings and general comparisons between two node-valued expressions
(value joins over the ``doc`` encoding).

Column naming: every rule instance draws *fresh* names for its auxiliary
columns (``pre1``/``size1``/``level1`` for step contexts, ``inner``/
``outer``/``sort`` for loop lifting, ...).  The paper's figures do the
same (cf. ``pre°`` vs. ``pre1`` in Fig. 7); it guarantees that the join
graph isolation rewrites can combine plan fragments without column clashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import XQueryCompilationError
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import (
    ColumnRef,
    Comparison as AlgComparison,
    Literal,
    Parameter,
    Predicate,
    Sum,
)
from repro.xmldb.axes import Operand, axis_predicate_spec, node_test_conditions
from repro.xquery import ast
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery

#: The standard interface schema every compiled sub-plan exposes.
ITER_POS_ITEM = ("iter", "pos", "item")


@dataclass(frozen=True)
class CompilerSettings:
    """Knobs of the compilation scheme.

    ``add_serialization_step`` appends the extra
    ``/descendant-or-self::node()`` step the paper uses to make the cost of
    result serialization explicit to the back-end (Section IV, "Autonomous
    index design").

    ``columnar_execution`` selects the vectorized execution core
    (:mod:`repro.algebra.columnar`) for the interpreted engines; ``False``
    pins the compiled row-at-a-time paths, kept in-tree as the differential
    baseline.  Compiled *plans* are identical either way — the flag only
    picks the physical evaluation strategy — but it participates in the
    plan-cache key like every other setting.
    """

    add_serialization_step: bool = False
    default_document: Optional[str] = None
    columnar_execution: bool = True


@dataclass
class LoopLiftingCompiler:
    """Compile (normalized) XQuery ASTs into table algebra plan DAGs."""

    settings: CompilerSettings = field(default_factory=CompilerSettings)

    def __post_init__(self) -> None:
        #: The single shared ``doc`` leaf all node references resolve to (Fig. 4).
        self.doc = DocTable()
        self._fresh = 0

    # -- public API ---------------------------------------------------------------

    def compile(self, expr: ast.Expression) -> Serialize:
        """Compile a *core* AST (cf. :func:`repro.xquery.normalize.normalize`)."""
        if self.settings.add_serialization_step:
            expr = self._wrap_serialization_step(expr)
        loop = LiteralTable(("iter",), [(1,)])
        plan = self._compile(expr, {}, loop)
        return Serialize(plan)

    def compile_source(self, source: str) -> Serialize:
        """Parse, normalize and compile XQuery source text."""
        surface = parse_xquery(source)
        core = normalize(surface, default_document=self.settings.default_document)
        return self.compile(core)

    # -- helpers --------------------------------------------------------------------

    def _fresh_suffix(self) -> str:
        self._fresh += 1
        return str(self._fresh)

    @staticmethod
    def _wrap_serialization_step(expr: ast.Expression) -> ast.Expression:
        """``for $ser in Q return $ser/descendant-or-self::node()``."""
        var = "serialization_context"
        return ast.ForExpr(
            var,
            expr,
            ast.FsDdo(ast.Step(ast.VarRef(var), "descendant-or-self", "node()")),
        )

    # -- the compilation scheme -------------------------------------------------------

    def _compile(
        self, expr: ast.Expression, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        if isinstance(expr, ast.VarRef):
            return self._compile_var(expr, env)
        if isinstance(expr, ast.Doc):
            return self._compile_doc(expr, loop)
        if isinstance(expr, ast.FsDdo):
            return self._compile_ddo(expr, env, loop)
        if isinstance(expr, ast.Step):
            return self._compile_step(expr, env, loop)
        if isinstance(expr, ast.IfExpr):
            return self._compile_if(expr, env, loop)
        if isinstance(expr, ast.ForExpr):
            return self._compile_for(expr, env, loop)
        if isinstance(expr, ast.LetExpr):
            return self._compile_let(expr, env, loop)
        if isinstance(expr, ast.FnBoolean):
            # Effective boolean value == existence of rows; the IF rule keys on
            # the iterations present in the condition plan, so fn:boolean is the
            # identity at the plan level.
            return self._compile(expr.argument, env, loop)
        if isinstance(expr, ast.Comparison):
            return self._compile_comparison(expr, env, loop)
        if isinstance(expr, ast.PositionFilter):
            return self._compile_position_filter(expr, env, loop)
        if isinstance(expr, ast.Aggregate):
            return self._compile_aggregate(expr, env, loop)
        if isinstance(expr, ast.EmptySequence):
            return LiteralTable(ITER_POS_ITEM, [])
        if isinstance(expr, (ast.StringLiteral, ast.NumberLiteral)):
            raise XQueryCompilationError(
                "standalone literals are only supported as comparison operands"
            )
        if isinstance(expr, ast.ExternalVar):
            raise XQueryCompilationError(
                f"external variable ${expr.name} is only supported as a comparison operand"
            )
        raise XQueryCompilationError(f"cannot compile AST node {type(expr).__name__}")

    # Rule VAR.
    def _compile_var(self, expr: ast.VarRef, env: Mapping[str, Operator]) -> Operator:
        try:
            return env[expr.name]
        except KeyError:
            raise XQueryCompilationError(f"unbound variable ${expr.name}") from None

    # Rule DOC.
    def _compile_doc(self, expr: ast.Doc, loop: Operator) -> Operator:
        doc_nodes = Select(
            self.doc,
            Predicate.of(
                AlgComparison(ColumnRef("kind"), "=", Literal("DOC")),
                AlgComparison(ColumnRef("name"), "=", Literal(expr.uri)),
            ),
        )
        lifted_loop = Attach(loop, "pos", 1)
        return Project(
            Cross(doc_nodes, lifted_loop),
            [("iter", "iter"), ("pos", "pos"), ("item", "pre")],
        )

    # Rule DDO.
    def _compile_ddo(
        self, expr: ast.FsDdo, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q = self._compile(expr.argument, env, loop)
        projected = Project(q, [("iter", "iter"), ("item", "item")])
        return RowRank(Distinct(projected), "pos", ("item",), ("iter",))

    # Rule STEP.
    def _compile_step(
        self, expr: ast.Step, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q = self._compile(expr.input, env, loop)
        suffix = self._fresh_suffix()
        pre_ctx, size_ctx, level_ctx = f"pre{suffix}", f"size{suffix}", f"level{suffix}"
        context = Project(
            Join(self.doc, q, Predicate.equality("pre", "item")),
            [("iter", "iter"), (pre_ctx, "pre"), (size_ctx, "size"), (level_ctx, "level")],
        )
        candidates: Operator = self.doc
        test_conjuncts = [
            AlgComparison(ColumnRef(column), op, Literal(value))
            for column, op, value in node_test_conditions(expr.node_test, expr.axis)
        ]
        if test_conjuncts:
            candidates = Select(self.doc, Predicate(test_conjuncts))
        axis_predicate = self._axis_predicate(expr.axis, pre_ctx, size_ctx, level_ctx)
        step_join = Join(candidates, context, axis_predicate)
        projected = Project(step_join, [("iter", "iter"), ("item", "pre")])
        return RowRank(projected, "pos", ("item",), ("iter",))

    def _axis_predicate(
        self, axis: str, pre_ctx: str, size_ctx: str, level_ctx: str
    ) -> Predicate:
        """Translate the declarative axis spec into an algebra join predicate."""
        rename = {"pre": pre_ctx, "size": size_ctx, "level": level_ctx}

        def term(operand: Operand):
            if operand.side == "ctx":
                base = ColumnRef(rename[operand.column])
                plus = ColumnRef(rename[operand.plus_column]) if operand.plus_column else None
            else:
                base = ColumnRef(operand.column)
                plus = ColumnRef(operand.plus_column) if operand.plus_column else None
            parts = [base]
            if plus is not None:
                parts.append(plus)
            if operand.offset:
                parts.append(Literal(operand.offset))
            if len(parts) == 1:
                return parts[0]
            return Sum(*parts)

        spec = axis_predicate_spec(axis)
        conjuncts = [
            AlgComparison(term(condition.left), condition.op, term(condition.right))
            for condition in spec.conditions
        ]
        return Predicate(conjuncts)

    # Rule IF.
    def _compile_if(
        self, expr: ast.IfExpr, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q_if = self._compile(expr.condition, env, loop)
        suffix = self._fresh_suffix()
        iter1 = f"iter1_{suffix}"
        loop_if = Distinct(Project(q_if, [(iter1, "iter")]))
        new_env = {
            name: Project(
                Join(loop_if, plan, Predicate.of(AlgComparison(ColumnRef(iter1), "=", ColumnRef("iter")))),
                [("iter", "iter"), ("pos", "pos"), ("item", "item")],
            )
            for name, plan in env.items()
        }
        new_loop = Project(loop_if, [("iter", iter1)])
        return self._compile(expr.then_branch, new_env, new_loop)

    # Rule FOR.
    def _compile_for(
        self, expr: ast.ForExpr, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q_in = self._compile(expr.sequence, env, loop)
        suffix = self._fresh_suffix()
        inner, outer, sort = f"inner{suffix}", f"outer{suffix}", f"sort{suffix}"
        pos1 = f"pos1_{suffix}"
        q_bound = RowId(q_in, inner)
        loop_map = Project(q_bound, [(outer, "iter"), (inner, inner), (sort, "pos")])
        new_env = {
            name: Project(
                Join(loop_map, plan, Predicate.of(AlgComparison(ColumnRef(outer), "=", ColumnRef("iter")))),
                [("iter", inner), ("pos", "pos"), ("item", "item")],
            )
            for name, plan in env.items()
        }
        new_env[expr.var] = Attach(
            Project(q_bound, [("iter", inner), ("item", "item")]), "pos", 1
        )
        new_loop = Project(loop_map, [("iter", inner)])
        q_body = self._compile(expr.body, new_env, new_loop)
        joined: Operator = Join(
            q_body, loop_map, Predicate.of(AlgComparison(ColumnRef("iter"), "=", ColumnRef(inner)))
        )
        order_by: tuple[str, ...] = (sort, "pos")
        if expr.order_key is not None:
            # ORD: the key plan maps each binding (iter = inner) to the
            # string value of its key node; ranking by ⟨key, sort, pos⟩
            # instead of ⟨sort, pos⟩ reorders the loop's contributions by
            # key value ascending, binding order as tiebreak.  The inner
            # key join also drops bindings without a key — the supported
            # contract is one existent string-valued key per binding.
            key_col, key_iter = f"okey{suffix}", f"oiter{suffix}"
            q_key = self._compile(expr.order_key, new_env, new_loop)
            key_map = Project(
                Join(self.doc, q_key, Predicate.equality("pre", "item")),
                [(key_iter, "iter"), (key_col, "value")],
            )
            joined = Join(
                joined,
                key_map,
                Predicate.of(AlgComparison(ColumnRef("iter"), "=", ColumnRef(key_iter))),
            )
            order_by = (key_col, sort, "pos")
        ranked = RowRank(joined, pos1, order_by, (outer,))
        return Project(ranked, [("iter", outer), ("pos", pos1), ("item", "item")])

    # Rule LET (extension, Section III-C).
    def _compile_let(
        self, expr: ast.LetExpr, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        bound = self._compile(expr.value, env, loop)
        new_env = dict(env)
        new_env[expr.var] = bound
        return self._compile(expr.body, new_env, loop)

    # Rule POS (positional predicates ``E[n]`` beyond the range-join form).
    def _compile_position_filter(
        self, expr: ast.PositionFilter, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q = self._compile(expr.sequence, env, loop)
        position: "Literal | Parameter"
        if expr.parameter is not None:
            position = Parameter(expr.parameter)
        else:
            value = expr.position
            if value is None or not float(value).is_integer():
                # A non-integral position() test never holds.
                return LiteralTable(ITER_POS_ITEM, [])
            position = Literal(int(value))
        selected = Select(q, Predicate.of(AlgComparison(ColumnRef("pos"), "=", position)))
        # The selected item is a singleton per iteration: its position is 1.
        return Attach(Project(selected, [("iter", "iter"), ("item", "item")]), "pos", 1)

    # Rule AGGR (fn:count / fn:sum / fn:avg, Section III-C).
    def _compile_aggregate(
        self, expr: ast.Aggregate, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q = self._compile(expr.argument, env, loop)
        suffix = self._fresh_suffix()
        if expr.function == "count":
            child: Operator = Project(q, [("iter", "iter"), ("item", "item")])
            value_column = None
        else:
            # sum/avg aggregate the numeric ``data`` column of the nodes the
            # argument evaluates to; the pre = item context join collapses
            # into the argument's own doc alias during isolation.
            value_column = f"data{suffix}"
            atomized = Join(self.doc, q, Predicate.equality("pre", "item"))
            child = Project(
                atomized, [("iter", "iter"), ("item", "item"), (value_column, "data")]
            )
        aggregated = GroupAggregate(
            child,
            loop,
            expr.function,
            group_column="iter",
            unit_column="item",
            value_column=value_column,
        )
        return Attach(aggregated, "pos", 1)

    # Rule COMP (and its value-join extension).
    _LITERAL_OPERANDS = (ast.StringLiteral, ast.NumberLiteral, ast.ExternalVar)

    def _compile_comparison(
        self, expr: ast.Comparison, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        left_literal = isinstance(expr.left, self._LITERAL_OPERANDS)
        right_literal = isinstance(expr.right, self._LITERAL_OPERANDS)
        if left_literal and right_literal:
            raise XQueryCompilationError(
                "comparisons between two literals / external variables are not supported"
            )
        left_aggregate = isinstance(expr.left, ast.Aggregate)
        right_aggregate = isinstance(expr.right, ast.Aggregate)
        if left_aggregate or right_aggregate:
            if right_aggregate and not left_aggregate:
                aggregate, other, op = expr.right, expr.left, _flip(expr.op)
            else:
                aggregate, other, op = expr.left, expr.right, expr.op
            if not isinstance(other, self._LITERAL_OPERANDS):
                raise XQueryCompilationError(
                    "aggregates compare against literals or external variables only"
                )
            return self._compile_aggregate_comparison(aggregate, op, other, env, loop)  # type: ignore[arg-type]
        if left_literal or right_literal:
            if right_literal:
                node_expr, literal, op = expr.left, expr.right, expr.op
            else:
                node_expr, literal, op = expr.right, expr.left, _flip(expr.op)
            return self._compile_comparison_with_literal(node_expr, op, literal, env, loop)
        return self._compile_value_join(expr, env, loop)

    def _compile_comparison_with_literal(
        self,
        node_expr: ast.Expression,
        op: str,
        literal: ast.Expression,
        env: Mapping[str, Operator],
        loop: Operator,
    ) -> Operator:
        q = self._compile(node_expr, env, loop)
        atomized = Join(self.doc, q, Predicate.equality("pre", "item"))
        value_term: "Literal | Parameter"
        if isinstance(literal, ast.ExternalVar):
            # A late-bound parameter slot: the declared type picks the column
            # (numeric comparisons go against ``data``, string ones against
            # ``value``), the value arrives at execution time.
            column = "data" if literal.is_numeric else "value"
            value_term = Parameter(literal.name)
        elif isinstance(literal, ast.NumberLiteral):
            column, value_term = "data", Literal(literal.value)
        else:
            column, value_term = "value", Literal(literal.value)  # type: ignore[union-attr]
        selected = Select(atomized, Predicate.of(AlgComparison(ColumnRef(column), op, value_term)))
        per_iteration = Distinct(Project(selected, [("iter", "iter")]))
        return Attach(Attach(per_iteration, "pos", 1), "item", 1)

    def _compile_aggregate_comparison(
        self,
        aggregate: "ast.Aggregate",
        op: str,
        literal: ast.Expression,
        env: Mapping[str, Operator],
        loop: Operator,
    ) -> Operator:
        """``count($x) > 2`` — the aggregate's value compares directly.

        Unlike node operands, an aggregate's ``item`` column already *is*
        the comparison value — no atomization join against ``doc``.
        """
        q = self._compile_aggregate(aggregate, env, loop)
        value_term: "Literal | Parameter"
        if isinstance(literal, ast.ExternalVar):
            value_term = Parameter(literal.name)
        elif isinstance(literal, ast.NumberLiteral):
            value_term = Literal(literal.value)
        else:
            value_term = Literal(literal.value)  # type: ignore[union-attr]
        selected = Select(q, Predicate.of(AlgComparison(ColumnRef("item"), op, value_term)))
        per_iteration = Distinct(Project(selected, [("iter", "iter")]))
        return Attach(Attach(per_iteration, "pos", 1), "item", 1)

    def _compile_value_join(
        self, expr: ast.Comparison, env: Mapping[str, Operator], loop: Operator
    ) -> Operator:
        q_left = self._compile(expr.left, env, loop)
        q_right = self._compile(expr.right, env, loop)
        suffix = self._fresh_suffix()
        left_value, right_value, right_iter = f"lval{suffix}", f"rval{suffix}", f"riter{suffix}"
        left_plan = Project(
            Join(self.doc, q_left, Predicate.equality("pre", "item")),
            [("iter", "iter"), (left_value, "value")],
        )
        right_plan = Project(
            Join(self.doc, q_right, Predicate.equality("pre", "item")),
            [(right_iter, "iter"), (right_value, "value")],
        )
        joined = Join(
            left_plan,
            right_plan,
            Predicate.of(
                AlgComparison(ColumnRef("iter"), "=", ColumnRef(right_iter)),
                AlgComparison(ColumnRef(left_value), expr.op, ColumnRef(right_value)),
            ),
        )
        per_iteration = Distinct(Project(joined, [("iter", "iter")]))
        return Attach(Attach(per_iteration, "pos", 1), "item", 1)


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def compile_query(
    source: str,
    settings: Optional[CompilerSettings] = None,
) -> Serialize:
    """Parse, normalize and compile XQuery source text into a plan DAG."""
    compiler = LoopLiftingCompiler(settings or CompilerSettings())
    return compiler.compile_source(source)

"""Recursive-descent parser for the supported XQuery surface syntax.

The accepted grammar is the fragment of Fig. 1 of the paper plus the
extensions its Section III-C uses (``let``, ``where``, multi-variable
``for`` clauses, path predicates ``[...]`` and general comparisons between
two path expressions), plus the usual XPath abbreviations:

* ``//name``  for ``/descendant-or-self::node()/child::name`` (equivalently
  ``descendant::name`` for element name tests, which is how it is expanded),
* ``name``    for ``child::name``,
* ``@name``   for ``attribute::name``,
* ``text()``  and the other kind tests,
* a leading ``/`` for the root of the statically known context document.
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xmldb.axes import AXES
from repro.xquery.ast import (
    Aggregate,
    AGGREGATE_FUNCTIONS,
    AndExpr,
    Comparison,
    ContextItem,
    Doc,
    Empty,
    EmptySequence,
    Exists,
    EXTERNAL_XS_TYPES,
    Expression,
    ExternalVar,
    ExternalVariable,
    Filter,
    ForExpr,
    GENERAL_COMPARISONS,
    IfExpr,
    LetExpr,
    NumberLiteral,
    Quantified,
    QueryModule,
    Root,
    Step,
    StringLiteral,
    VarRef,
    rewrite_variables,
)
from repro.xquery.lexer import Token, tokenize

_KIND_TESTS = frozenset(
    {"text", "node", "comment", "element", "attribute", "processing-instruction", "document-node"}
)

#: Function-call spellings of the supported aggregates (``count`` is also a
#: legal element name — only a following ``(`` makes it a call).
_AGGREGATE_NAMES = {
    name: function
    for function in AGGREGATE_FUNCTIONS
    for name in (function, f"fn:{function}")
}

#: Sequence tests, parsed with the same name-plus-``(`` lookahead as the
#: aggregates (``exists``/``empty`` are also legal element names).
_SEQUENCE_TESTS = {
    name: node_type
    for node_type in (Exists, Empty)
    for name in (node_type.__name__.lower(), f"fn:{node_type.__name__.lower()}")
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        self.position += 1
        return token

    def check(self, token_type: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.type != token_type:
            return False
        return text is None or token.text == text

    def accept(self, token_type: str, text: str | None = None) -> Token | None:
        if self.check(token_type, text):
            return self.advance()
        return None

    def expect(self, token_type: str, text: str | None = None) -> Token:
        if not self.check(token_type, text):
            token = self.peek()
            expected = text or token_type
            raise XQuerySyntaxError(
                f"expected {expected!r} but found {token.text or token.type!r}", token.position
            )
        return self.advance()

    def _peek_is_keyword(self, offset: int, text: str) -> bool:
        token = self.peek(offset)
        return token.type == "keyword" and token.text == text

    def _peek_is_name(self, offset: int, text: str) -> bool:
        """Contextual keywords (``order``, ``by``, ``satisfies``, ...) stay
        plain names in the lexer so they remain legal element names."""
        token = self.peek(offset)
        return token.type == "name" and token.text == text

    def _expect_var_name_token(self) -> Token:
        """Variable names may collide with keywords (``$variable``, ``$as``, ...)."""
        token = self.peek()
        if token.type in ("name", "keyword"):
            return self.advance()
        raise XQuerySyntaxError(
            f"expected a variable name, found {token.text or token.type!r}", token.position
        )

    # -- grammar ----------------------------------------------------------------

    def parse_module(self) -> QueryModule:
        externals = self.parse_prolog()
        body = self.parse_expr_single()
        self.expect("eof")
        if externals:
            substitutions = {
                declaration.name: ExternalVar(declaration.name, declaration.xs_type)
                for declaration in externals
            }
            body = _substitute_externals(body, substitutions)
        return QueryModule(externals=tuple(externals), body=body)

    def parse_prolog(self) -> list[ExternalVariable]:
        """Parse ``declare variable $name (as xs:type)? external ;`` declarations."""
        externals: list[ExternalVariable] = []
        seen: set[str] = set()
        # Two-token lookahead: a lone ``declare`` is a legal element name
        # (e.g. the path ``declare/child::x``), only ``declare variable``
        # opens a declaration.
        while self.check("keyword", "declare") and self._peek_is_keyword(1, "variable"):
            self.advance()
            self.expect("keyword", "variable")
            self.expect("$")
            name_token = self._expect_var_name_token()
            xs_type: str | None = None
            if self.accept("keyword", "as"):
                type_token = self.expect("name")
                if type_token.text not in EXTERNAL_XS_TYPES:
                    supported = ", ".join(sorted(EXTERNAL_XS_TYPES))
                    raise XQuerySyntaxError(
                        f"unsupported external variable type {type_token.text!r} "
                        f"(supported: {supported})",
                        type_token.position,
                    )
                xs_type = type_token.text
            self.expect("keyword", "external")
            self.expect(";")
            if name_token.text in seen:
                raise XQuerySyntaxError(
                    f"duplicate declaration of external variable ${name_token.text}",
                    name_token.position,
                )
            seen.add(name_token.text)
            externals.append(ExternalVariable(name_token.text, xs_type))
        return externals

    def parse_expr_single(self) -> Expression:
        if self.check("keyword", "for") or self.check("keyword", "let"):
            return self.parse_flwor()
        if self.check("keyword", "if"):
            return self.parse_if()
        return self.parse_or_and()

    def parse_flwor(self) -> Expression:
        """Parse ``for``/``let`` clauses, an optional ``where`` and the ``return``."""
        bindings: list[tuple[str, str, Expression]] = []  # (kind, var, expr)
        while True:
            if self.accept("keyword", "for"):
                bindings.append(("for",) + self._parse_binding(":= not allowed", "in"))
                while self.accept(","):
                    bindings.append(("for",) + self._parse_binding(":= not allowed", "in"))
            elif self.accept("keyword", "let"):
                bindings.append(("let",) + self._parse_binding("in not allowed", ":="))
                while self.accept(","):
                    bindings.append(("let",) + self._parse_binding("in not allowed", ":="))
            else:
                break
        condition: Expression | None = None
        if self.accept("keyword", "where"):
            condition = self.parse_condition()
        order_key = self._parse_order_by(bindings)
        self.expect("keyword", "return")
        body = self.parse_expr_single()
        if condition is not None:
            body = IfExpr(condition, body)
        for kind, var, expr in reversed(bindings):
            if kind == "for":
                body = ForExpr(var, expr, body, order_key)
                order_key = None
            else:
                body = LetExpr(var, expr, body)
        return body

    def _parse_order_by(self, bindings: list) -> Expression | None:
        """Parse the supported ``order by`` subset: one ascending key."""
        if not (self._peek_is_name(0, "order") and self._peek_is_name(1, "by")):
            return None
        order_token = self.advance()
        self.advance()
        for_count = sum(1 for kind, _, _ in bindings if kind == "for")
        if for_count != 1:
            raise XQuerySyntaxError(
                "'order by' is supported for FLWORs with exactly one 'for' "
                f"binding (this one has {for_count})",
                order_token.position,
            )
        order_key = self.parse_path()
        if self._peek_is_name(0, "descending"):
            token = self.peek()
            raise XQuerySyntaxError(
                "descending order is not supported (ascending only)", token.position
            )
        if self._peek_is_name(0, "ascending"):
            self.advance()
        if self._peek_is_name(0, "empty"):
            token = self.peek()
            raise XQuerySyntaxError(
                "'empty greatest/least' modifiers are not supported", token.position
            )
        if self.check(","):
            token = self.peek()
            raise XQuerySyntaxError(
                "multiple 'order by' keys are not supported", token.position
            )
        return order_key

    def _parse_binding(self, error_hint: str, separator: str) -> tuple[str, Expression]:
        self.expect("$")
        var = self._expect_var_name_token().text
        if separator == "in":
            self.expect("keyword", "in")
        else:
            self.expect(":=")
        expr = self.parse_expr_single()
        return var, expr

    def parse_if(self) -> Expression:
        self.expect("keyword", "if")
        self.expect("(")
        condition = self.parse_condition()
        self.expect(")")
        self.expect("keyword", "then")
        then_branch = self.parse_expr_single()
        self.expect("keyword", "else")
        self.expect("(")
        self.expect(")")
        return IfExpr(condition, then_branch)

    def parse_condition(self) -> Expression:
        """A conjunction of comparisons / existence tests (``and`` only)."""
        left = self.parse_or_and()
        while self.accept("keyword", "and"):
            right = self.parse_or_and()
            left = AndExpr(left, right)
        return left

    def parse_or_and(self) -> Expression:
        if self.check("keyword", "or"):
            token = self.peek()
            raise XQuerySyntaxError("'or' is not part of the supported fragment", token.position)
        token = self.peek()
        if (
            token.type == "name"
            and token.text in ("some", "every")
            and self.peek(1).type == "$"
        ):
            return self.parse_quantified()
        return self.parse_comparison()

    def parse_quantified(self) -> Expression:
        """``some|every $var in sequence satisfies predicate`` (one binding)."""
        quantifier = self.advance().text
        self.expect("$")
        var = self._expect_var_name_token().text
        self.expect("keyword", "in")
        sequence = self.parse_path()
        if self.check(","):
            token = self.peek()
            raise XQuerySyntaxError(
                "quantified expressions support a single variable binding", token.position
            )
        if not self._peek_is_name(0, "satisfies"):
            token = self.peek()
            raise XQuerySyntaxError(
                f"expected 'satisfies' but found {token.text or token.type!r}",
                token.position,
            )
        self.advance()
        predicate = self.parse_condition()
        return Quantified(quantifier, var, sequence, predicate)

    def parse_comparison(self) -> Expression:
        left = self.parse_path()
        for op in GENERAL_COMPARISONS:
            if self.check(op):
                self.advance()
                right = self.parse_path()
                return Comparison(left, op, right)
        return left

    # -- paths --------------------------------------------------------------------

    def parse_path(self) -> Expression:
        token = self.peek()
        if token.type == "string":
            self.advance()
            return StringLiteral(token.text)
        if token.type == "number":
            self.advance()
            return NumberLiteral(float(token.text))
        if self.check("/") or self.check("//"):
            base: Expression = Root()
        else:
            base = self.parse_primary()
        return self.parse_relative_path(base)

    def parse_relative_path(self, base: Expression) -> Expression:
        expr = base
        expr = self.parse_filters(expr)
        while True:
            if self.accept("//"):
                # ``E//n`` abbreviates ``E/descendant-or-self::node()/child::n``;
                # for child steps this is equivalent to the single step
                # ``E/descendant::n``, which is also how the paper states Q1/Q2.
                step = self._parse_step(expr)
                if isinstance(step, Step) and step.axis == "child":
                    expr = Step(step.input, "descendant", step.node_test)
                elif isinstance(step, Step) and step.axis == "attribute":
                    expr = Step(Step(step.input, "descendant-or-self", "node()"), "attribute", step.node_test)
                else:
                    expr = step
            elif self.accept("/"):
                expr = self._parse_step(expr)
            else:
                break
            expr = self.parse_filters(expr)
        return expr

    def parse_filters(self, expr: Expression) -> Expression:
        while self.accept("["):
            predicate = self.parse_condition()
            self.expect("]")
            expr = Filter(expr, predicate)
        return expr

    def parse_primary(self) -> Expression:
        if self.check("keyword", "doc") and self.peek(1).type == "(":
            self.advance()
            self.expect("(")
            uri = self.expect("string").text
            self.expect(")")
            return Doc(uri)
        token = self.peek()
        if (
            token.type == "name"
            and token.text in _AGGREGATE_NAMES
            and self.peek(1).type == "("
        ):
            self.advance()
            self.expect("(")
            argument = self.parse_expr_single()
            self.expect(")")
            return Aggregate(_AGGREGATE_NAMES[token.text], argument)
        if (
            token.type == "name"
            and token.text in _SEQUENCE_TESTS
            and self.peek(1).type == "("
        ):
            self.advance()
            self.expect("(")
            argument = self.parse_expr_single()
            self.expect(")")
            return _SEQUENCE_TESTS[token.text](argument)
        if self.accept("$"):
            return VarRef(self._expect_var_name_token().text)
        if self.accept("."):
            return ContextItem()
        if self.check("("):
            if self.peek(1).type == ")":
                self.advance()
                self.advance()
                return EmptySequence()
            self.advance()
            inner = self.parse_expr_single()
            self.expect(")")
            return inner
        # A relative path starting with a step: the implicit base is the context item.
        if self.check("name") or self.check("@") or self.check("*") or self.check("keyword"):
            return self._parse_step(ContextItem())
        token = self.peek()
        raise XQuerySyntaxError(
            f"unexpected token {token.text or token.type!r} in expression", token.position
        )

    def _parse_step(self, base: Expression) -> Expression:
        """Parse one location step and attach it to ``base``."""
        if self.accept("@"):
            name = self._expect_step_name()
            return Step(base, "attribute", name)
        if self.accept("*"):
            return Step(base, "child", "*")
        token = self.peek()
        if token.type not in ("name", "keyword"):
            raise XQuerySyntaxError(
                f"expected a location step, found {token.text or token.type!r}", token.position
            )
        name = self.advance().text
        if self.accept("::"):
            axis = name
            if axis not in AXES:
                raise XQuerySyntaxError(f"unknown XPath axis {axis!r}", token.position)
            if self.accept("@"):
                return Step(base, axis, self._expect_step_name())
            if self.accept("*"):
                return Step(base, axis, "*")
            test_token = self.peek()
            if test_token.type not in ("name", "keyword"):
                raise XQuerySyntaxError(
                    f"expected a node test, found {test_token.text or test_token.type!r}",
                    test_token.position,
                )
            self.advance()
            node_test = self._maybe_kind_test(test_token.text)
            return Step(base, axis, node_test)
        node_test = self._maybe_kind_test(name)
        if node_test.endswith("()") and node_test[:-2] == "attribute":
            return Step(base, "attribute", "*")
        return Step(base, "child", node_test)

    def _expect_step_name(self) -> str:
        if self.accept("*"):
            return "*"
        token = self.peek()
        if token.type in ("name", "keyword"):
            return self.advance().text
        return self.expect("name").text

    def _maybe_kind_test(self, name: str) -> str:
        """Turn ``text`` + ``()`` into the kind test ``text()``; plain names stay."""
        if name in _KIND_TESTS and self.check("("):
            self.expect("(")
            self.expect(")")
            return f"{name}()"
        return name


def _substitute_externals(
    expr: Expression, substitutions: dict[str, ExternalVar]
) -> Expression:
    """Replace unshadowed :class:`VarRef` occurrences of declared externals.

    ``for``/``let`` bindings shadow an external of the same name inside their
    body (but not inside their own sequence / value expression), following
    the usual XQuery scoping rules — :func:`rewrite_variables` threads the
    shadow set.
    """

    def replace(node: Expression, shadowed: frozenset[str]) -> Expression:
        if isinstance(node, VarRef) and node.name in substitutions and node.name not in shadowed:
            return substitutions[node.name]
        return node

    return rewrite_variables(expr, replace)


def parse_module(source: str) -> QueryModule:
    """Parse XQuery text (prolog + body) into a :class:`QueryModule`.

    External variables declared in the prolog occur in the body as
    :class:`~repro.xquery.ast.ExternalVar` nodes, ready for the compiler to
    turn into late-bound parameter slots.
    """
    return _Parser(tokenize(source)).parse_module()


def parse_xquery(source: str) -> Expression:
    """Parse XQuery text into a surface AST.

    Queries that declare external variables must go through
    :func:`parse_module` (or a prepared-query API such as
    ``XQueryProcessor.prepare``) so that bindings can be supplied.
    """
    module = _Parser(tokenize(source)).parse_module()
    if module.externals:
        names = ", ".join(f"${declaration.name}" for declaration in module.externals)
        raise XQuerySyntaxError(
            f"query declares external variable(s) {names}; "
            "use parse_module() / prepare() and supply bindings"
        )
    return module.body

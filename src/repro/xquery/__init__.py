"""XQuery front-end: lexer, parser, Core normalization, loop-lifting compiler.

The supported language is the fragment of Fig. 1 of the paper — nested
``for`` loops over node sequences, conditionals with an empty ``else``
branch, ``doc(...)``, XPath location steps along all 12 axes with name and
kind tests, and general comparisons — extended (as Section III-C of the
paper does) with ``let`` bindings, ``where`` clauses, path predicates
``[...]`` and general comparisons between two node-valued expressions.

The stages are:

1. :mod:`repro.xquery.parser` — surface syntax to AST,
2. :mod:`repro.xquery.normalize` — XQuery Core normalization
   (``fs:ddo``, ``fn:boolean``, predicate and ``where`` desugaring),
3. :mod:`repro.xquery.compiler` — the loop-lifting compilation scheme of
   Fig. 13 producing table algebra plan DAGs.
"""

from repro.xquery.ast import Expression
from repro.xquery.compiler import CompilerSettings, LoopLiftingCompiler, compile_query
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery

__all__ = [
    "CompilerSettings",
    "Expression",
    "LoopLiftingCompiler",
    "compile_query",
    "normalize",
    "parse_xquery",
]

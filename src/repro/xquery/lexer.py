"""Tokenizer for the supported XQuery surface syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import XQuerySyntaxError

#: Multi-character punctuation, longest first so that ``//`` wins over ``/``.
_PUNCTUATION = (
    "::", ":=", "//", "!=", "<=", ">=", "(", ")", "[", "]", ",", "/", "@", "$",
    "*", "=", "<", ">", ".", ";",
)

_KEYWORDS = frozenset(
    {
        "for", "let", "in", "where", "return", "if", "then", "else", "and", "or",
        "doc", "declare", "variable", "external", "as",
    }
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-._")
_WHITESPACE = set(" \t\r\n")


@dataclass(frozen=True)
class Token:
    """One lexical token with its type, text and source offset."""

    type: str
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list of :class:`Token` (with a trailing EOF)."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char in _WHITESPACE:
            position += 1
            continue
        if source.startswith("(:", position):
            end = source.find(":)", position + 2)
            if end < 0:
                raise XQuerySyntaxError("unterminated XQuery comment", position)
            position = end + 2
            continue
        if char in ("'", '"'):
            end = source.find(char, position + 1)
            if end < 0:
                raise XQuerySyntaxError("unterminated string literal", position)
            yield Token("string", source[position + 1 : end], position)
            position = end + 1
            continue
        if char.isdigit():
            start = position
            while position < length and (source[position].isdigit() or source[position] == "."):
                position += 1
            yield Token("number", source[start:position], start)
            continue
        if char in _NAME_START:
            start = position
            while position < length and source[position] in _NAME_CHARS:
                position += 1
            text = source[start:position]
            # Names with prefixes (fn:boolean, fs:ddo, descendant-or-self) keep
            # their colon only when followed by another name character, so that
            # ``child::bidder`` still splits on ``::``.
            if (
                position < length
                and source[position] == ":"
                and position + 1 < length
                and source[position + 1] in _NAME_START
                and source[position + 1 : position + 2] != ":"
                and not source.startswith("::", position)
            ):
                position += 1
                start2 = position
                while position < length and source[position] in _NAME_CHARS:
                    position += 1
                text = f"{text}:{source[start2:position]}"
            token_type = "keyword" if text in _KEYWORDS else "name"
            yield Token(token_type, text, start)
            continue
        matched = False
        for punctuation in _PUNCTUATION:
            if source.startswith(punctuation, position):
                yield Token(punctuation, punctuation, position)
                position += len(punctuation)
                matched = True
                break
        if not matched:
            raise XQuerySyntaxError(f"unexpected character {char!r}", position)
    yield Token("eof", "", length)

"""Abstract syntax trees for the supported XQuery fragment.

The same node classes serve as the *surface* AST (what the parser emits)
and as the *core* AST (what normalization emits); the core form simply
guarantees a number of invariants:

* every path expression is wrapped in :class:`FsDdo`,
* every conditional test is wrapped in :class:`FnBoolean`,
* ``[...]`` predicates, ``where`` clauses and ``and`` conjunctions have been
  desugared into ``for``/``if`` nests,
* :class:`ContextItem` and :class:`Root` no longer occur (they have been
  replaced by variables / ``doc(...)`` calls).

All nodes are immutable dataclasses, rendered back to (pseudo) XQuery text
via :func:`render`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.errors import XQueryBindingError

#: General comparison operators of the fragment (grammar rule [60]).
GENERAL_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")

#: ``xs:`` atomic types accepted in ``declare variable $x as <type> external;``
#: that select the numeric ``data`` column of the encoding.
NUMERIC_XS_TYPES = frozenset(
    {"xs:decimal", "xs:double", "xs:float", "xs:integer", "xs:int", "xs:long"}
)

#: The numeric types that additionally require integral values at bind time.
INTEGER_XS_TYPES = frozenset({"xs:integer", "xs:int", "xs:long"})

#: All accepted external-variable type annotations.
EXTERNAL_XS_TYPES = NUMERIC_XS_TYPES | {"xs:string"}


class Expression:
    """Base class of all AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class StringLiteral(Expression):
    """A string literal, e.g. ``"person0"``."""

    value: str


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """A numeric literal, e.g. ``500``."""

    value: float


@dataclass(frozen=True)
class EmptySequence(Expression):
    """The empty sequence ``()``."""


@dataclass(frozen=True)
class Doc(Expression):
    """``doc("uri")`` — the document node of a persistently stored document."""

    uri: str


@dataclass(frozen=True)
class Root(Expression):
    """A leading ``/`` — the document node of the statically known context document."""


@dataclass(frozen=True)
class ContextItem(Expression):
    """The context item ``.`` (only valid inside predicates in the surface syntax)."""


@dataclass(frozen=True)
class VarRef(Expression):
    """A variable reference ``$name``."""

    name: str


@dataclass(frozen=True)
class ExternalVar(Expression):
    """An occurrence of a ``declare variable $name ... external`` parameter.

    Unlike :class:`VarRef` — which denotes a node sequence bound by ``for`` /
    ``let`` — an external variable denotes an atomic *value* supplied at
    execution time.  ``xs_type`` is the declared ``xs:`` type (``None`` for
    an untyped declaration, which is treated as ``xs:string``); it decides
    whether comparisons target the ``data`` (numeric) or ``value`` (string)
    column of the encoding.
    """

    name: str
    xs_type: Optional[str] = None

    @property
    def is_numeric(self) -> bool:
        return self.xs_type in NUMERIC_XS_TYPES


@dataclass(frozen=True)
class ExternalVariable:
    """One ``declare variable $name (as xs:type)? external;`` declaration."""

    name: str
    xs_type: Optional[str] = None

    @property
    def is_numeric(self) -> bool:
        return self.xs_type in NUMERIC_XS_TYPES

    def render(self) -> str:
        annotation = f" as {self.xs_type}" if self.xs_type else ""
        return f"declare variable ${self.name}{annotation} external;"


@dataclass(frozen=True)
class QueryModule:
    """A parsed query: external-variable declarations plus the body expression."""

    externals: tuple[ExternalVariable, ...]
    body: Expression

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(declaration.name for declaration in self.externals)


@dataclass(frozen=True)
class Step(Expression):
    """One XPath location step ``input / axis :: node_test``."""

    input: Expression
    axis: str
    node_test: str


@dataclass(frozen=True)
class Filter(Expression):
    """A predicate application ``input [ predicate ]`` (surface form only)."""

    input: Expression
    predicate: Expression


@dataclass(frozen=True)
class ForExpr(Expression):
    """``for $var in sequence (order by order_key)? return body``.

    ``order_key`` (when set) reorders the loop's contributions by the string
    value of the key expression, ascending, ties broken by binding order —
    the supported ``order by`` subset.  The key is evaluated once per
    binding; the supported contract is a single existent string-valued key
    (a text or attribute node) per binding.
    """

    var: str
    sequence: Expression
    body: Expression
    order_key: Optional[Expression] = None


@dataclass(frozen=True)
class LetExpr(Expression):
    """``let $var := value return body``."""

    var: str
    value: Expression
    body: Expression


@dataclass(frozen=True)
class PositionFilter(Expression):
    """``sequence[n]`` — the item at sequence position ``n`` (core form).

    The normalizer emits this for numeric predicates (``//item[2]``): XPath
    treats a numeric predicate value as a ``position() = n`` test, not as an
    effective boolean value.  ``position`` carries a literal position;
    ``parameter`` the name of a numeric external variable whose value
    arrives at execution time (``//item[$n]``) — exactly one of the two is
    set.
    """

    sequence: Expression
    position: Optional[float] = None
    parameter: Optional[str] = None


@dataclass(frozen=True)
class IfExpr(Expression):
    """``if (condition) then then_branch else ()`` — the fragment's conditional."""

    condition: Expression
    then_branch: Expression


@dataclass(frozen=True)
class AndExpr(Expression):
    """``left and right`` (surface form only; desugared into nested ifs)."""

    left: Expression
    right: Expression


@dataclass(frozen=True)
class Comparison(Expression):
    """A general comparison ``left op right``."""

    left: Expression
    op: str
    right: Expression


#: The aggregate functions of the widened fragment (Section III-C workloads:
#: XMark Q8-Q12 and Q20 count/sum/avg over bound sequences).
AGGREGATE_FUNCTIONS = ("count", "sum", "avg")


@dataclass(frozen=True)
class Aggregate(Expression):
    """``fn:count(argument)`` / ``fn:sum`` / ``fn:avg`` over a sequence.

    ``function`` is one of :data:`AGGREGATE_FUNCTIONS`.  Aggregates follow
    SQL's NULL discipline over the ``data`` column of the encoding (nodes
    without a numeric value are ignored by ``sum``/``avg``), which is what
    lets the SQL configuration push them down as native ``COUNT``/``SUM``/
    ``AVG`` without a Python-side re-aggregation.
    """

    function: str
    argument: Expression


@dataclass(frozen=True)
class Exists(Expression):
    """``fn:exists(argument)`` — true iff the argument sequence is non-empty.

    Surface form only; valid in condition position, where normalization
    turns it into the plain existence test (the effective boolean value of
    the argument).
    """

    argument: Expression


@dataclass(frozen=True)
class Empty(Expression):
    """``fn:empty(argument)`` — true iff the argument sequence is empty.

    Surface form only; normalization desugars it into the aggregate
    comparison ``fn:count(argument) = 0``, which every engine already
    evaluates (including over empty groups).
    """

    argument: Expression


@dataclass(frozen=True)
class Quantified(Expression):
    """``some|every $var in sequence satisfies predicate`` (surface form only).

    ``some`` desugars into the existence test of a filtered ``for`` nest;
    ``every`` into ``fn:count(for $var in sequence where not(predicate)
    return $var) = 0``, with ``not`` realized by negating the comparison
    operator (exact for the fragment's single-valued comparisons — the
    supported contract) or by the ``empty``/``exists`` duality for
    existence predicates.
    """

    quantifier: str
    var: str
    sequence: Expression
    predicate: Expression


@dataclass(frozen=True)
class FnBoolean(Expression):
    """``fn:boolean(argument)`` — effective boolean value (core form)."""

    argument: Expression


@dataclass(frozen=True)
class FsDdo(Expression):
    """``fs:distinct-doc-order(argument)`` — duplicate removal + document order (core form)."""

    argument: Expression


Literal = Union[StringLiteral, NumberLiteral]


def render(expr: Expression, indent: int = 0) -> str:
    """Render an AST back to readable (pseudo-)XQuery text."""
    pad = "  " * indent
    if isinstance(expr, StringLiteral):
        return f'"{expr.value}"'
    if isinstance(expr, NumberLiteral):
        value = expr.value
        if float(value).is_integer():
            return str(int(value))
        return str(value)
    if isinstance(expr, EmptySequence):
        return "()"
    if isinstance(expr, Doc):
        return f'doc("{expr.uri}")'
    if isinstance(expr, Root):
        return "/"
    if isinstance(expr, ContextItem):
        return "."
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, ExternalVar):
        return f"${expr.name}"
    if isinstance(expr, Step):
        return f"{render(expr.input)}/{expr.axis}::{expr.node_test}"
    if isinstance(expr, Filter):
        return f"{render(expr.input)}[{render(expr.predicate)}]"
    if isinstance(expr, ForExpr):
        ordering = f" order by {render(expr.order_key)}" if expr.order_key is not None else ""
        return (
            f"for ${expr.var} in {render(expr.sequence)}{ordering}\n"
            f"{pad}return {render(expr.body, indent + 1)}"
        )
    if isinstance(expr, LetExpr):
        return (
            f"let ${expr.var} := {render(expr.value)}\n"
            f"{pad}return {render(expr.body, indent + 1)}"
        )
    if isinstance(expr, IfExpr):
        return (
            f"if ({render(expr.condition)})\n"
            f"{pad}then {render(expr.then_branch, indent + 1)}\n"
            f"{pad}else ()"
        )
    if isinstance(expr, AndExpr):
        return f"{render(expr.left)} and {render(expr.right)}"
    if isinstance(expr, Comparison):
        return f"{render(expr.left)} {expr.op} {render(expr.right)}"
    if isinstance(expr, PositionFilter):
        position = f"${expr.parameter}" if expr.parameter else render(NumberLiteral(expr.position))
        return f"{render(expr.sequence)}[{position}]"
    if isinstance(expr, Aggregate):
        return f"fn:{expr.function}({render(expr.argument)})"
    if isinstance(expr, Exists):
        return f"fn:exists({render(expr.argument)})"
    if isinstance(expr, Empty):
        return f"fn:empty({render(expr.argument)})"
    if isinstance(expr, Quantified):
        return (
            f"{expr.quantifier} ${expr.var} in {render(expr.sequence)} "
            f"satisfies {render(expr.predicate)}"
        )
    if isinstance(expr, FnBoolean):
        return f"fn:boolean({render(expr.argument)})"
    if isinstance(expr, FsDdo):
        return f"fs:ddo({render(expr.argument)})"
    raise TypeError(f"cannot render AST node {type(expr).__name__}")


def child_expressions(expr: Expression) -> tuple[Expression, ...]:
    """The direct sub-expressions of ``expr`` (used by AST walks in tests)."""
    if isinstance(expr, Step):
        return (expr.input,)
    if isinstance(expr, Filter):
        return (expr.input, expr.predicate)
    if isinstance(expr, ForExpr):
        if expr.order_key is not None:
            return (expr.sequence, expr.body, expr.order_key)
        return (expr.sequence, expr.body)
    if isinstance(expr, LetExpr):
        return (expr.value, expr.body)
    if isinstance(expr, IfExpr):
        return (expr.condition, expr.then_branch)
    if isinstance(expr, AndExpr):
        return (expr.left, expr.right)
    if isinstance(expr, Comparison):
        return (expr.left, expr.right)
    if isinstance(expr, PositionFilter):
        return (expr.sequence,)
    if isinstance(expr, Aggregate):
        return (expr.argument,)
    if isinstance(expr, (Exists, Empty)):
        return (expr.argument,)
    if isinstance(expr, Quantified):
        return (expr.sequence, expr.predicate)
    if isinstance(expr, FnBoolean):
        return (expr.argument,)
    if isinstance(expr, FsDdo):
        return (expr.argument,)
    return ()


def check_bindings(
    externals: tuple[ExternalVariable, ...],
    bindings: Optional[Mapping[str, object]],
) -> dict[str, object]:
    """Validate ``bindings`` against the declared external variables.

    Returns the normalized binding map (numeric values coerced to ``float``,
    matching what the parser produces for number literals, so prepared
    execution is bit-for-bit identical to ad-hoc literal execution).  Raises
    :class:`~repro.errors.XQueryBindingError` for missing bindings, bindings
    to undeclared names, and values that do not match the declared type.
    """
    supplied = dict(bindings or {})
    declared = {declaration.name: declaration for declaration in externals}
    unknown = sorted(set(supplied) - set(declared))
    if unknown:
        known = ", ".join(f"${name}" for name in declared) or "none"
        raise XQueryBindingError(
            f"bindings for undeclared external variable(s) "
            f"{', '.join(f'${name}' for name in unknown)} (declared: {known})"
        )
    missing = sorted(set(declared) - set(supplied))
    if missing:
        raise XQueryBindingError(
            "missing binding(s) for external variable(s) "
            + ", ".join(f"${name}" for name in missing)
        )
    normalized: dict[str, object] = {}
    for name, declaration in declared.items():
        value = supplied[name]
        if declaration.is_numeric:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise XQueryBindingError(
                    f"external variable ${name} is declared {declaration.xs_type} "
                    f"but was bound to {type(value).__name__} {value!r}"
                )
            if declaration.xs_type in INTEGER_XS_TYPES and not float(value).is_integer():
                raise XQueryBindingError(
                    f"external variable ${name} is declared {declaration.xs_type} "
                    f"but was bound to non-integral value {value!r}"
                )
            normalized[name] = float(value)
        else:
            if not isinstance(value, str):
                hint = (
                    " (declare it 'as xs:decimal' to bind numbers)"
                    if isinstance(value, (int, float)) and not isinstance(value, bool)
                    else ""
                )
                raise XQueryBindingError(
                    f"external variable ${name} is declared as a string "
                    f"but was bound to {type(value).__name__} {value!r}{hint}"
                )
            normalized[name] = value
    return normalized


#: Leaf node types that carry no sub-expressions (and no variable names).
_LEAF_NODES = (StringLiteral, NumberLiteral, EmptySequence, Doc, Root, ContextItem)


def rewrite_variables(
    expr: Expression,
    rewrite,
    shadowed: frozenset[str] = frozenset(),
) -> Expression:
    """Structure-preserving rewrite of the variable leaves of an AST.

    ``rewrite(node, shadowed)`` is called for every :class:`VarRef` and
    :class:`ExternalVar` and returns its replacement; ``shadowed`` is the
    set of names bound by enclosing ``for``/``let`` clauses at that point
    (bindings shadow in their body, not in their own sequence / value
    expression).  Composite nodes are rebuilt; an unknown node type raises,
    so extending the AST without teaching this walker fails loudly instead
    of silently skipping variables.
    """
    if isinstance(expr, (VarRef, ExternalVar)):
        return rewrite(expr, shadowed)
    if isinstance(expr, _LEAF_NODES):
        return expr
    if isinstance(expr, Step):
        return Step(rewrite_variables(expr.input, rewrite, shadowed), expr.axis, expr.node_test)
    if isinstance(expr, Filter):
        return Filter(
            rewrite_variables(expr.input, rewrite, shadowed),
            rewrite_variables(expr.predicate, rewrite, shadowed),
        )
    if isinstance(expr, ForExpr):
        return ForExpr(
            expr.var,
            rewrite_variables(expr.sequence, rewrite, shadowed),
            rewrite_variables(expr.body, rewrite, shadowed | {expr.var}),
            rewrite_variables(expr.order_key, rewrite, shadowed | {expr.var})
            if expr.order_key is not None
            else None,
        )
    if isinstance(expr, LetExpr):
        return LetExpr(
            expr.var,
            rewrite_variables(expr.value, rewrite, shadowed),
            rewrite_variables(expr.body, rewrite, shadowed | {expr.var}),
        )
    if isinstance(expr, IfExpr):
        return IfExpr(
            rewrite_variables(expr.condition, rewrite, shadowed),
            rewrite_variables(expr.then_branch, rewrite, shadowed),
        )
    if isinstance(expr, AndExpr):
        return AndExpr(
            rewrite_variables(expr.left, rewrite, shadowed),
            rewrite_variables(expr.right, rewrite, shadowed),
        )
    if isinstance(expr, Comparison):
        return Comparison(
            rewrite_variables(expr.left, rewrite, shadowed),
            expr.op,
            rewrite_variables(expr.right, rewrite, shadowed),
        )
    if isinstance(expr, PositionFilter):
        return PositionFilter(
            rewrite_variables(expr.sequence, rewrite, shadowed),
            expr.position,
            expr.parameter,
        )
    if isinstance(expr, Aggregate):
        return Aggregate(expr.function, rewrite_variables(expr.argument, rewrite, shadowed))
    if isinstance(expr, Exists):
        return Exists(rewrite_variables(expr.argument, rewrite, shadowed))
    if isinstance(expr, Empty):
        return Empty(rewrite_variables(expr.argument, rewrite, shadowed))
    if isinstance(expr, Quantified):
        return Quantified(
            expr.quantifier,
            expr.var,
            rewrite_variables(expr.sequence, rewrite, shadowed),
            rewrite_variables(expr.predicate, rewrite, shadowed | {expr.var}),
        )
    if isinstance(expr, FnBoolean):
        return FnBoolean(rewrite_variables(expr.argument, rewrite, shadowed))
    if isinstance(expr, FsDdo):
        return FsDdo(rewrite_variables(expr.argument, rewrite, shadowed))
    raise TypeError(f"rewrite_variables cannot traverse {type(expr).__name__}")


def bind_external_variables(expr: Expression, values: Mapping[str, object]) -> Expression:
    """Replace every :class:`ExternalVar` by the corresponding literal node.

    ``values`` must already be normalized via :func:`check_bindings`.  This
    is the late-binding step of the navigational (XSCAN) path, where patterns
    are matched directly over the surface AST.
    """

    def replace(node: Expression, shadowed: frozenset[str]) -> Expression:
        if not isinstance(node, ExternalVar):
            return node
        try:
            value = values[node.name]
        except KeyError:
            raise XQueryBindingError(
                f"external variable ${node.name} is unbound"
            ) from None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return NumberLiteral(float(value))
        return StringLiteral(str(value))

    return rewrite_variables(expr, replace)

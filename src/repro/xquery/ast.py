"""Abstract syntax trees for the supported XQuery fragment.

The same node classes serve as the *surface* AST (what the parser emits)
and as the *core* AST (what normalization emits); the core form simply
guarantees a number of invariants:

* every path expression is wrapped in :class:`FsDdo`,
* every conditional test is wrapped in :class:`FnBoolean`,
* ``[...]`` predicates, ``where`` clauses and ``and`` conjunctions have been
  desugared into ``for``/``if`` nests,
* :class:`ContextItem` and :class:`Root` no longer occur (they have been
  replaced by variables / ``doc(...)`` calls).

All nodes are immutable dataclasses, rendered back to (pseudo) XQuery text
via :func:`render`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: General comparison operators of the fragment (grammar rule [60]).
GENERAL_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class Expression:
    """Base class of all AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class StringLiteral(Expression):
    """A string literal, e.g. ``"person0"``."""

    value: str


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """A numeric literal, e.g. ``500``."""

    value: float


@dataclass(frozen=True)
class EmptySequence(Expression):
    """The empty sequence ``()``."""


@dataclass(frozen=True)
class Doc(Expression):
    """``doc("uri")`` — the document node of a persistently stored document."""

    uri: str


@dataclass(frozen=True)
class Root(Expression):
    """A leading ``/`` — the document node of the statically known context document."""


@dataclass(frozen=True)
class ContextItem(Expression):
    """The context item ``.`` (only valid inside predicates in the surface syntax)."""


@dataclass(frozen=True)
class VarRef(Expression):
    """A variable reference ``$name``."""

    name: str


@dataclass(frozen=True)
class Step(Expression):
    """One XPath location step ``input / axis :: node_test``."""

    input: Expression
    axis: str
    node_test: str


@dataclass(frozen=True)
class Filter(Expression):
    """A predicate application ``input [ predicate ]`` (surface form only)."""

    input: Expression
    predicate: Expression


@dataclass(frozen=True)
class ForExpr(Expression):
    """``for $var in sequence return body`` (one variable per node)."""

    var: str
    sequence: Expression
    body: Expression


@dataclass(frozen=True)
class LetExpr(Expression):
    """``let $var := value return body``."""

    var: str
    value: Expression
    body: Expression


@dataclass(frozen=True)
class IfExpr(Expression):
    """``if (condition) then then_branch else ()`` — the fragment's conditional."""

    condition: Expression
    then_branch: Expression


@dataclass(frozen=True)
class AndExpr(Expression):
    """``left and right`` (surface form only; desugared into nested ifs)."""

    left: Expression
    right: Expression


@dataclass(frozen=True)
class Comparison(Expression):
    """A general comparison ``left op right``."""

    left: Expression
    op: str
    right: Expression


@dataclass(frozen=True)
class FnBoolean(Expression):
    """``fn:boolean(argument)`` — effective boolean value (core form)."""

    argument: Expression


@dataclass(frozen=True)
class FsDdo(Expression):
    """``fs:distinct-doc-order(argument)`` — duplicate removal + document order (core form)."""

    argument: Expression


Literal = Union[StringLiteral, NumberLiteral]


def render(expr: Expression, indent: int = 0) -> str:
    """Render an AST back to readable (pseudo-)XQuery text."""
    pad = "  " * indent
    if isinstance(expr, StringLiteral):
        return f'"{expr.value}"'
    if isinstance(expr, NumberLiteral):
        value = expr.value
        if float(value).is_integer():
            return str(int(value))
        return str(value)
    if isinstance(expr, EmptySequence):
        return "()"
    if isinstance(expr, Doc):
        return f'doc("{expr.uri}")'
    if isinstance(expr, Root):
        return "/"
    if isinstance(expr, ContextItem):
        return "."
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, Step):
        return f"{render(expr.input)}/{expr.axis}::{expr.node_test}"
    if isinstance(expr, Filter):
        return f"{render(expr.input)}[{render(expr.predicate)}]"
    if isinstance(expr, ForExpr):
        return (
            f"for ${expr.var} in {render(expr.sequence)}\n"
            f"{pad}return {render(expr.body, indent + 1)}"
        )
    if isinstance(expr, LetExpr):
        return (
            f"let ${expr.var} := {render(expr.value)}\n"
            f"{pad}return {render(expr.body, indent + 1)}"
        )
    if isinstance(expr, IfExpr):
        return (
            f"if ({render(expr.condition)})\n"
            f"{pad}then {render(expr.then_branch, indent + 1)}\n"
            f"{pad}else ()"
        )
    if isinstance(expr, AndExpr):
        return f"{render(expr.left)} and {render(expr.right)}"
    if isinstance(expr, Comparison):
        return f"{render(expr.left)} {expr.op} {render(expr.right)}"
    if isinstance(expr, FnBoolean):
        return f"fn:boolean({render(expr.argument)})"
    if isinstance(expr, FsDdo):
        return f"fs:ddo({render(expr.argument)})"
    raise TypeError(f"cannot render AST node {type(expr).__name__}")


def child_expressions(expr: Expression) -> tuple[Expression, ...]:
    """The direct sub-expressions of ``expr`` (used by AST walks in tests)."""
    if isinstance(expr, Step):
        return (expr.input,)
    if isinstance(expr, Filter):
        return (expr.input, expr.predicate)
    if isinstance(expr, ForExpr):
        return (expr.sequence, expr.body)
    if isinstance(expr, LetExpr):
        return (expr.value, expr.body)
    if isinstance(expr, IfExpr):
        return (expr.condition, expr.then_branch)
    if isinstance(expr, AndExpr):
        return (expr.left, expr.right)
    if isinstance(expr, Comparison):
        return (expr.left, expr.right)
    if isinstance(expr, FnBoolean):
        return (expr.argument,)
    if isinstance(expr, FsDdo):
        return (expr.argument,)
    return ()

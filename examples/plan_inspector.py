"""Plan inspector: watch join graph isolation transform a query step by step.

Prints the stacked plan (Fig. 4), the rule applications of the isolation
rewriting (Fig. 5 / Fig. 6), the isolated plan (Fig. 7), the SQL join graph
(Fig. 8) and the back-end execution plan (Fig. 10) for a query given on the
command line (default: Q1 of the paper).

Run with:  python examples/plan_inspector.py ["<xquery>"]
"""

import sys

from repro import XQueryProcessor
from repro.algebra.render import plan_summary, render_plan
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_encoding

DEFAULT_QUERY = 'doc("auction.xml")/descendant::open_auction[bidder]'


def main() -> None:
    query = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_QUERY
    encoding = generate_xmark_encoding(XMarkConfig(scale=0.2))
    processor = XQueryProcessor(encoding, default_document="auction.xml")
    compilation = processor.compile(query)

    print("=== stacked plan (cf. Fig. 4) ===")
    print(plan_summary(compilation.stacked_plan))
    print(render_plan(compilation.stacked_plan))

    print("\n=== isolation rule applications (cf. Fig. 5) ===")
    for rule, count in sorted(compilation.isolation_report.rules_fired().items()):
        print(f"{count:>4} × {rule}")

    print("\n=== isolated plan (cf. Fig. 7) ===")
    print(plan_summary(compilation.isolated_plan))
    print(render_plan(compilation.isolated_plan))

    if compilation.join_graph_sql:
        print("\n=== SQL join graph (cf. Fig. 8/9) ===")
        print(compilation.join_graph_sql)
        print("\n=== back-end execution plan (cf. Fig. 10/11) ===")
        print(processor.explain(query))
    else:
        print("\n(no single-block SQL join graph: " + str(compilation.join_graph_error) + ")")


if __name__ == "__main__":
    main()

"""Bibliography lookups on a DBLP-like document (queries Q5/Q6 of the paper).

Shows the full pipeline on the second dataset of the paper's evaluation:
the emitted SQL, the advisor's index proposals for this workload, and the
query results serialized back to XML.

Run with:  python examples/dblp_bibliography.py
"""

from repro import XQueryProcessor
from repro.relational.advisor import IndexAdvisor
from repro.xmldb.generators.dblp import DblpConfig, generate_dblp_encoding

QUERIES = {
    "Q5 (VLDB 2001 proceedings)": '/dblp/*[@key = "conf/vldb2001" and editor and title]/title',
    "Q6 (early PhD theses)": 'for $t in /dblp/phdthesis[year < "1994" and author and title] return $t/title',
    "papers per venue": 'doc("dblp.xml")/child::dblp/child::inproceedings/child::booktitle/child::text()',
}


def main() -> None:
    encoding = generate_dblp_encoding(DblpConfig(scale=0.3))
    processor = XQueryProcessor(encoding, default_document="dblp.xml")
    print(f"DBLP instance: {len(encoding)} nodes\n")

    graphs = []
    for label, query in QUERIES.items():
        compilation = processor.compile(query)
        outcome = processor.execute(query)
        items = sorted(set(outcome.items))
        print(f"--- {label} ---")
        if compilation.join_graph is not None:
            graphs.append(compilation.join_graph)
            print(f"self-join width: {compilation.join_graph.self_join_width}")
        print(f"result nodes   : {len(items)}")
        print(processor.serialize(items[:3], separator="\n"))
        print()

    print("--- index advisor proposals for this workload (cf. Table VI) ---")
    advisor = IndexAdvisor()
    advisor.advise(graphs)
    print(advisor.report())


if __name__ == "__main__":
    main()

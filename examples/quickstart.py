"""Quickstart: turn a relational engine into an XQuery processor.

Builds a small XMark-like auction document, encodes it into the ``doc``
table, compiles Q1 of the paper with the loop-lifting compiler, isolates its
join graph, prints the emitted SQL and runs it on the bundled relational
back-end.

Run with:  python examples/quickstart.py
"""

from repro import XQueryProcessor
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_encoding

QUERY = 'doc("auction.xml")/descendant::open_auction[bidder]'


def main() -> None:
    encoding = generate_xmark_encoding(XMarkConfig(scale=0.2))
    processor = XQueryProcessor(encoding, default_document="auction.xml")

    compilation = processor.compile(QUERY)
    print("=== XQuery ===")
    print(QUERY)
    print("\n=== XQuery Core (after normalization) ===")
    print(compilation.core_text())
    print("\n=== Isolated join graph as SQL (cf. Fig. 8) ===")
    print(compilation.join_graph_sql)
    print("\n=== Back-end execution plan (cf. Fig. 10) ===")
    print(processor.explain(QUERY))

    outcome = processor.execute_join_graph(QUERY)
    items = sorted(set(outcome.items))
    print(f"\n=== Result: {len(items)} open_auction elements with a bidder ===")
    print(processor.serialize(items[:2], separator="\n")[:400], "...")

    # The same SFW block on a real RDBMS: SQLite, loaded with the Fig. 2
    # encoding and the paper's access-path indexes (configuration="sql").
    via_sqlite = processor.execute(QUERY, configuration="sql")
    assert via_sqlite.items == outcome.items
    print(f"\n=== SQLite agrees: {via_sqlite.node_count} rows via "
          f"{len(processor.sql_backend.indexes())} indexes ===")
    for line in processor.sql_backend.query_plan(via_sqlite.details.sql):
        print("  ", line)


if __name__ == "__main__":
    main()

"""Auction analytics: the data-bound "workhorse" fragment on XMark data.

Runs a small analytical workload over a generated XMark instance and
compares the three execution strategies of the paper's evaluation
(stacked plan, isolated join graph, navigational pureXML baseline).

Run with:  python examples/auction_analytics.py
"""

import time

from repro import XQueryProcessor
from repro.purexml.engine import PureXMLEngine
from repro.purexml.storage import XMLColumnStore
from repro.xmldb.encoding import encode_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document

QUERIES = {
    "auctions with bidders": 'doc("auction.xml")/descendant::open_auction[bidder]',
    "all sale prices": "//closed_auction/price/text()",
    "expensive sales": 'doc("auction.xml")//closed_auction[price > 500]/child::price/child::text()',
    "person0's profile": '/site/people/person[@id = "person0"]/name/text()',
    "bid increases": 'for $a in doc("auction.xml")//open_auction return $a/child::bidder/child::increase',
}


def main() -> None:
    document = generate_xmark_document(XMarkConfig(scale=0.4))
    encoding = encode_document(document)
    processor = XQueryProcessor(encoding, default_document="auction.xml")
    navigational = PureXMLEngine(XMLColumnStore.whole(document))
    print(f"XMark instance: {len(encoding)} nodes\n")
    print(f"{'query':>22} | {'nodes':>5} | {'stacked':>9} | {'joingraph':>9} | {'pureXML':>9}")
    print("-" * 68)
    for label, query in QUERIES.items():
        start = time.perf_counter()
        stacked = processor.execute_stacked(query)
        stacked_s = time.perf_counter() - start
        start = time.perf_counter()
        isolated = processor.execute(query)
        isolated_s = time.perf_counter() - start
        start = time.perf_counter()
        pure = navigational.execute(query)
        pure_s = time.perf_counter() - start
        assert set(stacked.items) == set(isolated.items)
        print(
            f"{label:>22} | {len(set(isolated.items)):>5} | {stacked_s:>8.3f}s "
            f"| {isolated_s:>8.3f}s | {pure_s:>8.3f}s"
        )


if __name__ == "__main__":
    main()
